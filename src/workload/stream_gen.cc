#include "workload/stream_gen.h"

#include <algorithm>

#include "common/logging.h"

namespace mtperf::workload {

using uarch::Addr;
using uarch::kLineBytes;
using uarch::MicroOp;
using uarch::OpClass;

namespace {

/** splitmix64-style mix used for the pointer-chase walk. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::size_t kRecentStoreRing = 8;

} // namespace

StreamGenerator::StreamGenerator(const PhaseParams &params,
                                 std::uint64_t seed)
    : params_(params),
      rng_(seed),
      dataBase_(0x10000000ULL),
      hotBase_(0x08000000ULL),
      codeBase_(0x00400000ULL),
      pc_(codeBase_),
      recentStores_(kRecentStoreRing)
{
    params_.validate();
    setParams(params);
    chaseState_ = mix64(seed ^ 0xc0ffee);
}

void
StreamGenerator::setParams(const PhaseParams &params)
{
    params_ = params;
    params_.validate();
    dataLines_ = std::max<std::uint64_t>(1,
                                         params_.workingSetBytes /
                                             kLineBytes);
    hotLines_ = std::max<std::uint64_t>(1, params_.hotBytes / kLineBytes);
    codeLines_ = std::max<std::uint64_t>(1,
                                         params_.codeFootprintBytes /
                                             kLineBytes);
    if (pc_ < codeBase_ ||
        pc_ >= codeBase_ + codeLines_ * kLineBytes) {
        pc_ = codeBase_;
    }
    hotSampler_ = ZipfSampler(hotLines_, 1.2);
    dataSampler_ = ZipfSampler(dataLines_, params_.zipfS);
    codeSampler_ = ZipfSampler(codeLines_, params_.codeZipfS);
}

std::uint64_t
StreamGenerator::scrambledLine(std::uint64_t rank) const
{
    // Scramble at page granularity: hot ranks land on scattered pages,
    // but lines within a page stay together, so page-level locality
    // (what the DTLB caches) tracks line-level locality the way real
    // heaps do.
    constexpr std::uint64_t lines_per_page =
        uarch::kPageBytes / kLineBytes;
    const std::uint64_t page = rank / lines_per_page;
    const std::uint64_t line_in_page = rank % lines_per_page;
    const std::uint64_t num_pages =
        std::max<std::uint64_t>(1, dataLines_ / lines_per_page);
    const std::uint64_t scrambled_page =
        (page * 0x9e3779b97f4a7c15ULL) % num_pages;
    return (scrambled_page * lines_per_page + line_in_page) % dataLines_;
}

Addr
StreamGenerator::pickLoadAddress(MicroOp &op)
{
    op.size = rng_.chance(0.4) ? 8 : 4;

    // Store-forwarding loads read a recently stored location.
    if (recentStoreCount_ > 0 && rng_.chance(params_.storeForwardFrac)) {
        const std::size_t avail =
            std::min(recentStoreCount_, kRecentStoreRing);
        const std::size_t back =
            1 + static_cast<std::size_t>(
                    rng_.uniformInt(std::uint64_t(avail)));
        const std::size_t pick =
            (recentStoreHead_ + kRecentStoreRing - back) %
            kRecentStoreRing;
        const RecentStore &store = recentStores_[pick];
        if (rng_.chance(params_.storeForwardPartialFrac)) {
            // Partial overlap: read wider than the store, or start
            // inside it — forwarding cannot satisfy this.
            op.size = 8;
            return store.addr + store.size / 2;
        }
        op.size = store.size;
        return store.addr;
    }

    const double kind = rng_.uniform();
    Addr addr;
    if (kind < params_.pointerChaseFrac) {
        // Dependent random walk: the next address is a hash of the
        // previous one, and the op depends on the previous chase load.
        // Nodes allocated together live on the same page, so about
        // half the hops stay page-local — DTLB misses trail L2 misses
        // the way they do for real pointer codes.
        chaseState_ = mix64(chaseState_);
        constexpr std::uint64_t lines_per_page =
            uarch::kPageBytes / kLineBytes;
        if (rng_.chance(params_.chasePageLocalFrac) &&
            dataLines_ > lines_per_page) {
            const Addr page_base =
                lastChaseAddr_ & ~(uarch::kPageBytes - 1);
            addr = page_base +
                   (chaseState_ % lines_per_page) * kLineBytes;
        } else {
            addr = dataBase_ + (chaseState_ % dataLines_) * kLineBytes;
        }
        lastChaseAddr_ = addr;
        op.size = 8;
        if (haveChaseLoad_) {
            const std::uint64_t dist = opIndex_ - lastChaseLoad_;
            op.depDist = static_cast<std::uint16_t>(
                std::clamp<std::uint64_t>(dist, 1, 255));
        }
        lastChaseLoad_ = opIndex_;
        haveChaseLoad_ = true;
        return addr;
    }
    if (kind < params_.pointerChaseFrac + params_.streamFrac) {
        streamPos_ =
            (streamPos_ + params_.strideBytes) %
            (dataLines_ * kLineBytes);
        return dataBase_ + (streamPos_ & ~Addr(op.size - 1));
    }
    addr = randomDataAddress();
    return addr;
}

Addr
StreamGenerator::randomDataAddress()
{
    const std::uint64_t offset =
        rng_.uniformInt(std::uint64_t(kLineBytes / 8)) * 8;
    if (rng_.chance(params_.hotFrac)) {
        // Stack/locals/globals: a small, heavily reused region.
        const std::uint64_t line = hotSampler_.sample(rng_);
        return hotBase_ + line * kLineBytes + offset;
    }
    const std::uint64_t rank = dataSampler_.sample(rng_);
    return dataBase_ + scrambledLine(rank) * kLineBytes + offset;
}

Addr
StreamGenerator::pickStoreAddress(MicroOp &op)
{
    op.size = rng_.chance(0.4) ? 8 : 4;
    return randomDataAddress();
}

void
StreamGenerator::advancePc(bool taken_branch)
{
    const Addr code_end = codeBase_ + codeLines_ * kLineBytes;
    if (!taken_branch) {
        pc_ += 4;
        if (pc_ >= code_end)
            pc_ = codeBase_;
        return;
    }
    if (rng_.chance(params_.farJumpFrac)) {
        // Call or indirect jump to a zipf-hot region of the footprint.
        const std::uint64_t line = codeSampler_.sample(rng_);
        pc_ = codeBase_ + line * kLineBytes +
              rng_.uniformInt(std::uint64_t(kLineBytes / 4)) * 4;
        return;
    }
    // Loop-style short backward branch.
    const std::uint64_t span =
        1 + rng_.uniformInt(std::uint64_t(128));
    const Addr back = span * 4;
    pc_ = pc_ >= codeBase_ + back ? pc_ - back : codeBase_;
}

MicroOp
StreamGenerator::next()
{
    MicroOp op;
    op.pc = pc_;

    const double mix = rng_.uniform();
    double acc = params_.loadFrac;
    if (mix < acc) {
        op.cls = OpClass::Load;
    } else if (mix < (acc += params_.storeFrac)) {
        op.cls = OpClass::Store;
    } else if (mix < (acc += params_.branchFrac)) {
        op.cls = OpClass::Branch;
    } else if (mix < (acc += params_.fpAddFrac)) {
        op.cls = OpClass::FpAdd;
    } else if (mix < (acc += params_.fpMulFrac)) {
        op.cls = OpClass::FpMul;
    } else if (mix < (acc += params_.fpDivFrac)) {
        op.cls = OpClass::FpDiv;
    } else if (mix < (acc += params_.intMulFrac)) {
        op.cls = OpClass::IntMul;
    } else {
        op.cls = OpClass::IntAlu;
    }

    // Register dependency (pointer-chase loads override this below).
    if (!rng_.chance(params_.depNoneFrac)) {
        const std::uint64_t dist = 1 + rng_.geometric(params_.depGeoP);
        op.depDist = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(dist, 64));
    }

    bool taken_branch = false;
    switch (op.cls) {
      case OpClass::Load:
        op.addr = pickLoadAddress(op);
        if (rng_.chance(params_.misalignedFrac)) {
            // Offset by one byte; occasionally park the access at the
            // end of a line so it also splits.
            op.addr += rng_.chance(0.3)
                           ? (kLineBytes - op.addr % kLineBytes - 1)
                           : 1;
        }
        break;
      case OpClass::Store:
        op.addr = pickStoreAddress(op);
        if (rng_.chance(params_.misalignedFrac)) {
            op.addr += rng_.chance(0.3)
                           ? (kLineBytes - op.addr % kLineBytes - 1)
                           : 1;
        }
        op.storeAddrSlow = rng_.chance(params_.storeAddrSlowFrac);
        {
            recentStores_[recentStoreHead_] = {op.addr, op.size};
            recentStoreHead_ = (recentStoreHead_ + 1) % kRecentStoreRing;
            ++recentStoreCount_;
        }
        break;
      case OpClass::Branch:
        if (rng_.chance(params_.branchEntropy))
            op.taken = rng_.chance(0.5);
        else
            op.taken = rng_.chance(params_.takenBias);
        taken_branch = op.taken;
        break;
      default:
        break;
    }

    op.hasLcp = rng_.chance(params_.lcpFrac);

    advancePc(taken_branch);
    ++opIndex_;
    return op;
}

} // namespace mtperf::workload
