#include "workload/runner.h"

#include <algorithm>
#include <cmath>

#include <chrono>

#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/stream_gen.h"

namespace mtperf::workload {

namespace {

double
jitterFraction(double value, double jitter, Rng &rng)
{
    return std::clamp(value * (1.0 + rng.uniform(-jitter, jitter)), 0.0,
                      1.0);
}

std::uint64_t
jitterBytes(std::uint64_t value, double jitter, Rng &rng,
            std::uint64_t floor_bytes)
{
    const double scaled =
        static_cast<double>(value) * (1.0 + rng.uniform(-jitter, jitter));
    return std::max<std::uint64_t>(
        floor_bytes, static_cast<std::uint64_t>(scaled));
}

} // namespace

PhaseParams
jitterPhase(const PhaseParams &params, double jitter, Rng &rng)
{
    if (jitter <= 0.0)
        return params;
    PhaseParams p = params;
    p.loadFrac = jitterFraction(p.loadFrac, jitter, rng);
    p.storeFrac = jitterFraction(p.storeFrac, jitter, rng);
    p.branchFrac = jitterFraction(p.branchFrac, jitter, rng);
    p.fpAddFrac = jitterFraction(p.fpAddFrac, jitter, rng);
    p.fpMulFrac = jitterFraction(p.fpMulFrac, jitter, rng);
    p.fpDivFrac = jitterFraction(p.fpDivFrac, jitter, rng);
    p.intMulFrac = jitterFraction(p.intMulFrac, jitter, rng);
    // Renormalize if the jitter pushed the mix above 1.
    const double mix = p.loadFrac + p.storeFrac + p.branchFrac +
                       p.fpAddFrac + p.fpMulFrac + p.fpDivFrac +
                       p.intMulFrac;
    if (mix > 1.0) {
        const double scale = 1.0 / mix;
        p.loadFrac *= scale;
        p.storeFrac *= scale;
        p.branchFrac *= scale;
        p.fpAddFrac *= scale;
        p.fpMulFrac *= scale;
        p.fpDivFrac *= scale;
        p.intMulFrac *= scale;
    }

    p.workingSetBytes = jitterBytes(p.workingSetBytes, jitter, rng, 4096);
    p.hotFrac = jitterFraction(p.hotFrac, jitter, rng);
    p.hotBytes = jitterBytes(p.hotBytes, jitter, rng, 1024);
    p.codeFootprintBytes =
        jitterBytes(p.codeFootprintBytes, jitter, rng, 1024);
    p.pointerChaseFrac = jitterFraction(p.pointerChaseFrac, jitter, rng);
    p.streamFrac = jitterFraction(p.streamFrac, jitter, rng);
    if (p.pointerChaseFrac + p.streamFrac > 1.0) {
        const double scale = 1.0 / (p.pointerChaseFrac + p.streamFrac);
        p.pointerChaseFrac *= scale;
        p.streamFrac *= scale;
    }
    p.chasePageLocalFrac =
        jitterFraction(p.chasePageLocalFrac, jitter * 0.3, rng);
    p.branchEntropy = jitterFraction(p.branchEntropy, jitter, rng);
    p.lcpFrac = jitterFraction(p.lcpFrac, jitter, rng);
    p.misalignedFrac = jitterFraction(p.misalignedFrac, jitter, rng);
    p.storeForwardFrac = jitterFraction(p.storeForwardFrac, jitter, rng);
    p.storeAddrSlowFrac =
        jitterFraction(p.storeAddrSlowFrac, jitter, rng);
    p.depNoneFrac = jitterFraction(p.depNoneFrac, jitter, rng);
    return p;
}

std::vector<SectionRecord>
runWorkload(const WorkloadSpec &spec, const RunnerOptions &options)
{
    if (spec.phases.empty())
        mtperf_fatal("workload '", spec.name, "' has no phases");
    if (options.instructionsPerSection == 0)
        mtperf_fatal("instructionsPerSection must be positive");
    MTPERF_FAULT_POINT("sim.workload.fail");

    obs::ScopedSpan span("sim", "sim.workload " + spec.name);
    static obs::Counter &sectionsSimulated =
        obs::counter("sim.sections_simulated");
    static obs::Counter &instructionsExecuted =
        obs::counter("sim.instructions_executed");
    static obs::Histogram &sectionMicros =
        obs::histogram("sim.section_micros");

    // Per-workload deterministic seeds, independent of suite order.
    std::uint64_t name_hash = 1469598103934665603ULL;
    for (char c : spec.name)
        name_hash = (name_hash ^ static_cast<unsigned char>(c)) *
                    1099511628211ULL;
    Rng jitter_rng(options.seed ^ name_hash);

    uarch::Core core(options.coreConfig);
    std::vector<SectionRecord> records;
    std::size_t section_index = 0;

    for (const auto &phase_spec : spec.phases) {
        const auto sections = static_cast<std::size_t>(std::llround(
            static_cast<double>(phase_spec.sections) *
            options.sectionScale));
        if (sections == 0)
            continue;

        StreamGenerator gen(phase_spec.params,
                            options.seed ^ name_hash ^
                                (section_index * 0x9e3779b9ULL + 1));

        for (std::size_t s = 0; s < sections; ++s) {
            gen.setParams(jitterPhase(phase_spec.params,
                                      options.paramJitter, jitter_rng));
            const auto wall_start = std::chrono::steady_clock::now();
            const uarch::EventCounters before = core.counters();
            for (std::uint64_t i = 0;
                 i < options.instructionsPerSection; ++i) {
                core.execute(gen.next());
            }
            sectionMicros.record(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count());
            SectionRecord record;
            record.workload = spec.name;
            record.phase = phase_spec.params.name;
            record.sectionIndex = section_index++;
            record.counters = core.counters().delta(before);
            records.push_back(std::move(record));
        }
    }
    sectionsSimulated.add(records.size());
    instructionsExecuted.add(records.size() *
                             options.instructionsPerSection);
    return records;
}

std::vector<SectionRecord>
runSuite(const std::vector<WorkloadSpec> &suite,
         const RunnerOptions &options)
{
    // Workloads are independent simulations with name-keyed seeds
    // (see runWorkload), so they can run concurrently; merging in
    // suite order keeps the record stream byte-identical to a serial
    // run regardless of thread count.
    auto per_workload =
        parallelMap(globalPool(), suite.size(), [&](std::size_t i) {
            return runWorkload(suite[i], options);
        });

    std::vector<SectionRecord> all;
    std::size_t total = 0;
    for (const auto &records : per_workload)
        total += records.size();
    all.reserve(total);
    for (auto &records : per_workload) {
        all.insert(all.end(), std::make_move_iterator(records.begin()),
                   std::make_move_iterator(records.end()));
    }
    return all;
}

} // namespace mtperf::workload
