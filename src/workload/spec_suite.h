/**
 * @file
 * The synthetic SPEC-CPU2006-like workload suite.
 *
 * Each workload is a phase-parameter model of the qualitative
 * behaviour the corresponding SPEC benchmark shows on a Core-2-class
 * machine: 429.mcf pointer-chases a huge working set (L2 + DTLB
 * bound), 436.cactusADM combines a large code footprint with big data
 * (L1I + L2 bound), 403.gcc has LCP-afflicted phases, 458.sjeng is
 * mispredict bound, 462.libquantum streams prefetch-friendly data,
 * and so on. The absolute numbers are tuned, not measured; what the
 * experiments rely on is that the suite spans the same diverse mix of
 * bottleneck classes the paper's dataset did.
 */

#ifndef MTPERF_WORKLOAD_SPEC_SUITE_H_
#define MTPERF_WORKLOAD_SPEC_SUITE_H_

#include <vector>

#include "workload/phase.h"

namespace mtperf::workload {

/** The full 17-workload suite, with per-phase section budgets. */
std::vector<WorkloadSpec> specLikeSuite();

/** Look up one suite workload by name. @throw FatalError if absent. */
WorkloadSpec suiteWorkload(const std::string &name);

/** Names of all suite workloads, in suite order. */
std::vector<std::string> suiteWorkloadNames();

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_SPEC_SUITE_H_
