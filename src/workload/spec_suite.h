/**
 * @file
 * The synthetic SPEC-CPU2006-like workload suite.
 *
 * Each workload is a phase-parameter model of the qualitative
 * behaviour the corresponding SPEC benchmark shows on a Core-2-class
 * machine: 429.mcf pointer-chases a huge working set (L2 + DTLB
 * bound), 436.cactusADM combines a large code footprint with big data
 * (L1I + L2 bound), 403.gcc has LCP-afflicted phases, 458.sjeng is
 * mispredict bound, 462.libquantum streams prefetch-friendly data,
 * and so on. The absolute numbers are tuned, not measured; what the
 * experiments rely on is that the suite spans the same diverse mix of
 * bottleneck classes the paper's dataset did.
 *
 * Since the declarative workload language landed, the suite is *data*:
 * specLikeSuite() resolves through a registry that loads the committed
 * spec JSON files (bit-identical to the compiled-in table — a test
 * pins this) and falls back to the compiled definitions when no spec
 * directory is available. Resolution order:
 *
 *   1. the MTPERF_SPEC_DIR environment variable — a directory of
 *      *.json workload specs, or the literal "builtin" to force the
 *      compiled-in table;
 *   2. the source tree's specs/ directory (path baked in at
 *      configure time) when it exists and contains spec files;
 *   3. the compiled-in table.
 *
 * Loaded suites are reordered canonically (compiled-suite order for
 * known names, then extras sorted by name) so dataset row order — and
 * therefore every downstream CSV byte — is independent of directory
 * listing order.
 */

#ifndef MTPERF_WORKLOAD_SPEC_SUITE_H_
#define MTPERF_WORKLOAD_SPEC_SUITE_H_

#include <string>
#include <vector>

#include "workload/phase.h"

namespace mtperf::workload {

/** The full 17-workload suite, with per-phase section budgets. */
std::vector<WorkloadSpec> specLikeSuite();

/**
 * Look up one suite workload by name.
 * @throw FatalError listing the available names if absent.
 */
WorkloadSpec suiteWorkload(const std::string &name);

/** Names of all suite workloads, in suite order. */
std::vector<std::string> suiteWorkloadNames();

/**
 * The hand-written C++ table, bypassing the spec registry. This is
 * the fallback source and the oracle the loader is tested against.
 */
std::vector<WorkloadSpec> compiledSuite();

/** Human description of where specLikeSuite() got its workloads. */
std::string suiteSourceDescription();

/**
 * Forget the cached suite so the next specLikeSuite() call resolves
 * its source again (tests flip MTPERF_SPEC_DIR around this).
 */
void reloadSuiteRegistry();

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_SPEC_SUITE_H_
