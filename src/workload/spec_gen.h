/**
 * @file
 * Seeded sampler over the workload-spec space.
 *
 * The suite stops being a bounded artifact here: the generator mints
 * novel-but-valid scenarios by sampling every PhaseParams field from
 * the plausible region of its documented range (DESIGN.md §12),
 * honouring the cross-field invariants (instruction-mix fractions
 * summing below 1, pointer-chase plus stream fractions at most 1) by
 * rejection. Candidates that violate an invariant are discarded and
 * counted (`workload.gen_rejected`), never silently clamped — the
 * accept/reject accounting is pinned by an obs invariant so
 * fleet-scale generation is observable like every other subsystem.
 *
 * Determinism: the same GenOptions produce the same workloads —
 * byte-identical spec documents — on every platform. All randomness
 * flows from one Rng seeded by GenOptions::seed.
 */

#ifndef MTPERF_WORKLOAD_SPEC_GEN_H_
#define MTPERF_WORKLOAD_SPEC_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/phase.h"

namespace mtperf::workload {

/** Knobs for a generation run. */
struct GenOptions
{
    /** Master seed; same seed, same scenarios, same bytes. */
    std::uint64_t seed = 1;

    /** How many workloads to mint. */
    std::size_t count = 1;

    /** Phases per workload are drawn uniformly from [1, maxPhases]. */
    std::size_t maxPhases = 3;

    /** Per-workload total section budget range (inclusive). */
    std::uint64_t minSections = 500;
    std::uint64_t maxSections = 700;

    /**
     * Workload names are "<prefix>_s<seed>_<index>", so fleets
     * generated from different seeds can share a directory without
     * name collisions.
     */
    std::string namePrefix = "gen";
};

/**
 * Generate @p options.count workloads. Every returned spec passes
 * PhaseParams::validate() on all phases.
 * @throw UsageError on contradictory options (e.g. an empty section
 * range or maxPhases of 0).
 */
std::vector<WorkloadSpec> generateWorkloads(const GenOptions &options);

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_SPEC_GEN_H_
