/**
 * @file
 * Instruction-trace capture and replay.
 *
 * The related work the paper contrasts itself with is trace-driven
 * simulation; this module makes the substrate usable in that mode
 * too: capture a workload's MicroOp stream to a compact binary trace
 * once, then replay it deterministically through any machine
 * configuration. Replaying the same trace on two configs isolates
 * the machine's contribution exactly (no workload randomness), which
 * the design-space examples exploit.
 *
 * Format v2 (little-endian, fixed-size records, default for writes):
 *   header:  magic "MTPT" u32, version u32 = 2, count u64
 *   record:  cls u8, size u8, flags u8 (bit0 taken, bit1 lcp,
 *            bit2 addrSlow), pad u8, depDist u16, pad u16,
 *            pc u64, addr u64, crc32 u32 (over the 24 payload bytes)
 *   trailer: magic "MTPE" u32, count u64, crc32 u32 (over the
 *            little-endian sequence of all record CRC words)
 *
 * The per-record CRC catches bit flips; the trailer count catches
 * truncation and a corrupted header count; the trailer CRC catches
 * record reordering or a corrupted trailer. Version 1 files (24-byte
 * records, no CRCs, no trailer) remain readable; their payload bytes
 * carry no redundancy, so only structural damage is detectable.
 *
 * Writes go through a temp file renamed into place on close(), so a
 * killed capture never leaves a partial trace at the target path.
 */

#ifndef MTPERF_WORKLOAD_TRACE_H_
#define MTPERF_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "uarch/core.h"
#include "uarch/types.h"
#include "workload/phase.h"

namespace mtperf::workload {

/** Streaming writer for binary instruction traces (format v2). */
class TraceWriter
{
  public:
    /** Open @p path for writing. @throw FatalError on I/O failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void write(const uarch::MicroOp &op);

    /**
     * Flush, finalize header and trailer, and atomically publish the
     * trace at its final path. Called by the destructor too; after a
     * failed write the destructor discards the temp file instead, so
     * no partial trace ever appears at the target.
     */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    struct Impl;
    Impl *impl_;
    std::uint64_t count_ = 0;
};

/** Reading policy for damaged traces. */
struct TraceReadOptions
{
    /**
     * When true, a truncated or corrupt record ends the trace at the
     * last valid prefix instead of throwing; the reader reports how
     * many records were dropped and logs the decision.
     */
    bool salvage = false;
};

/** Streaming reader for binary instruction traces (v1 and v2). */
class TraceReader
{
  public:
    /** Open @p path. @throw FatalError on missing/corrupt file. */
    explicit TraceReader(const std::string &path,
                         const TraceReadOptions &options = {});
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Total instructions in the trace. */
    std::uint64_t size() const { return count_; }

    /** Instructions read so far. */
    std::uint64_t position() const { return position_; }

    /** Format version of the open file (1 or 2). */
    std::uint32_t version() const;

    /** Records dropped by salvage (nonzero only after end of trace). */
    std::uint64_t droppedRecords() const;

    /**
     * Read the next instruction into @p op.
     * @return false at end of trace.
     * @throw FatalError on a truncated or corrupt file naming the
     * file, byte offset and cause (unless salvaging).
     */
    bool next(uarch::MicroOp &op);

  private:
    struct Impl;
    Impl *impl_;
    std::uint64_t count_ = 0;
    std::uint64_t position_ = 0;
};

/**
 * Capture @p instructions of one phase's stream to @p path.
 * @return the number written.
 */
std::uint64_t recordTrace(const PhaseParams &phase, std::uint64_t seed,
                          std::uint64_t instructions,
                          const std::string &path);

/**
 * Replay a whole trace through @p core.
 * @return instructions replayed.
 */
std::uint64_t replayTrace(const std::string &path, uarch::Core &core,
                          const TraceReadOptions &options = {});

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_TRACE_H_
