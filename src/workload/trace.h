/**
 * @file
 * Instruction-trace capture and replay.
 *
 * The related work the paper contrasts itself with is trace-driven
 * simulation; this module makes the substrate usable in that mode
 * too: capture a workload's MicroOp stream to a compact binary trace
 * once, then replay it deterministically through any machine
 * configuration. Replaying the same trace on two configs isolates
 * the machine's contribution exactly (no workload randomness), which
 * the design-space examples exploit.
 *
 * Format (little-endian, fixed-size records):
 *   header: magic "MTPT" u32, version u32, count u64
 *   record: cls u8, size u8, flags u8 (bit0 taken, bit1 lcp,
 *           bit2 addrSlow), pad u8, depDist u16, pad u16,
 *           pc u64, addr u64
 */

#ifndef MTPERF_WORKLOAD_TRACE_H_
#define MTPERF_WORKLOAD_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "uarch/core.h"
#include "uarch/types.h"
#include "workload/phase.h"

namespace mtperf::workload {

/** Streaming writer for binary instruction traces. */
class TraceWriter
{
  public:
    /** Open @p path for writing. @throw FatalError on I/O failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction. */
    void write(const uarch::MicroOp &op);

    /** Flush and finalize the header. Called by the destructor too. */
    void close();

    std::uint64_t written() const { return count_; }

  private:
    struct Impl;
    Impl *impl_;
    std::uint64_t count_ = 0;
};

/** Streaming reader for binary instruction traces. */
class TraceReader
{
  public:
    /** Open @p path. @throw FatalError on missing/corrupt file. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Total instructions in the trace. */
    std::uint64_t size() const { return count_; }

    /** Instructions read so far. */
    std::uint64_t position() const { return position_; }

    /**
     * Read the next instruction into @p op.
     * @return false at end of trace.
     * @throw FatalError on a truncated file.
     */
    bool next(uarch::MicroOp &op);

  private:
    struct Impl;
    Impl *impl_;
    std::uint64_t count_ = 0;
    std::uint64_t position_ = 0;
};

/**
 * Capture @p instructions of one phase's stream to @p path.
 * @return the number written.
 */
std::uint64_t recordTrace(const PhaseParams &phase, std::uint64_t seed,
                          std::uint64_t instructions,
                          const std::string &path);

/**
 * Replay a whole trace through @p core.
 * @return instructions replayed.
 */
std::uint64_t replayTrace(const std::string &path, uarch::Core &core);

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_TRACE_H_
