/**
 * @file
 * Parameterization of a workload execution phase.
 *
 * The paper's suite (a subset of SPEC CPU2006) cannot ship with this
 * repository, so workloads are described by the statistical properties
 * that drive the Table-I events: instruction mix, data working set and
 * access patterns, branch predictability, code footprint and the
 * encoding/forwarding quirks. A workload is a sequence of phases;
 * sectioning the execution by equal retired-instruction counts then
 * yields the paper's phase-classified dataset.
 */

#ifndef MTPERF_WORKLOAD_PHASE_H_
#define MTPERF_WORKLOAD_PHASE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mtperf::workload {

/** Statistical description of one execution phase. */
struct PhaseParams
{
    std::string name = "phase";

    /** @name Instruction mix (fractions of the dynamic stream) */
    ///@{
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double fpAddFrac = 0.0;
    double fpMulFrac = 0.0;
    double fpDivFrac = 0.0;
    double intMulFrac = 0.02;
    ///@}

    /** @name Data-access behaviour */
    ///@{
    std::uint64_t workingSetBytes = 256 * 1024;
    /**
     * Fraction of random accesses that hit a small hot region (stack,
     * locals, globals) instead of the large working set. Real codes
     * spend roughly half their references there, which is what keeps
     * L1 miss ratios in the single digits.
     */
    double hotFrac = 0.45;
    /** Size of that hot region. */
    std::uint64_t hotBytes = 16 * 1024;
    /** Fraction of loads that pointer-chase (serial dependent misses). */
    double pointerChaseFrac = 0.0;
    /**
     * Fraction of chase hops that stay on the current page (nodes
     * allocated together). High values give L2-bound chases that are
     * nonetheless DTLB-friendly.
     */
    double chasePageLocalFrac = 0.55;
    /** Fraction of loads that stream sequentially with strideBytes. */
    double streamFrac = 0.0;
    std::uint64_t strideBytes = 64;
    /** Zipf exponent of the random-access component (higher = hotter). */
    double zipfS = 0.9;
    ///@}

    /** @name Branch behaviour */
    ///@{
    /** Probability a branch outcome is pure noise (unpredictable). */
    double branchEntropy = 0.05;
    /** Taken probability of the biased (predictable) branches. */
    double takenBias = 0.7;
    ///@}

    /** @name Code behaviour */
    ///@{
    std::uint64_t codeFootprintBytes = 16 * 1024;
    /** Zipf exponent of branch-target locality inside the footprint. */
    double codeZipfS = 1.1;
    /** Fraction of taken branches that jump far (new code region). */
    double farJumpFrac = 0.15;
    ///@}

    /** @name Instruction-level parallelism */
    ///@{
    /** Geometric parameter of producer distance; higher = less ILP. */
    double depGeoP = 0.25;
    /** Fraction of ops with no register dependency at all. */
    double depNoneFrac = 0.3;
    ///@}

    /** @name Encoding / forwarding quirks */
    ///@{
    double lcpFrac = 0.0;            //!< ops with a length-changing prefix
    double misalignedFrac = 0.0;     //!< memory ops with unaligned address
    double storeForwardFrac = 0.0;   //!< loads that read a recent store
    double storeForwardPartialFrac = 0.25; //!< of those, partial overlaps
    double storeAddrSlowFrac = 0.0;  //!< stores with late-resolving address
    ///@}

    /**
     * Validate ranges (fractions in [0,1], mixes summing below 1).
     * @throw FatalError with the offending field named.
     */
    void validate() const;
};

/** A phase and how many sections of it a run should execute. */
struct PhaseSpec
{
    PhaseParams params;
    std::size_t sections = 1;
};

/** A named workload: an ordered list of phases. */
struct WorkloadSpec
{
    std::string name;
    std::vector<PhaseSpec> phases;

    /** Total sections across all phases. */
    std::size_t totalSections() const;
};

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_PHASE_H_
