/**
 * @file
 * Sectioned workload execution.
 *
 * The paper samples counters over spans of equal retired-instruction
 * counts ("sections"). The runner executes a workload's phases on a
 * timing core, snapshotting the counter file at section boundaries,
 * and optionally jitters the phase parameters a little per section —
 * real program phases are not statistically stationary, and that
 * within-class variation is what gives the leaf models something to
 * regress.
 */

#ifndef MTPERF_WORKLOAD_RUNNER_H_
#define MTPERF_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "uarch/core.h"
#include "workload/phase.h"

namespace mtperf::workload {

/** Counter deltas for one section of one workload. */
struct SectionRecord
{
    std::string workload;
    std::string phase;
    std::size_t sectionIndex = 0; //!< position within the workload run
    uarch::EventCounters counters; //!< deltas over the section

    /** @name Co-run provenance (multicore runs only) */
    ///@{
    std::uint32_t core = 0;  //!< core id; 0 in single-core runs
    std::string corunSet;    //!< "a+b" co-run label; empty single-core
    ///@}
};

/** Execution parameters for a suite run. */
struct RunnerOptions
{
    /** Retired instructions per section (the sectioning grain). */
    std::uint64_t instructionsPerSection = 10000;

    /** Relative per-section jitter applied to phase parameters. */
    double paramJitter = 0.18;

    /** Master seed; workload streams derive from it deterministically. */
    std::uint64_t seed = 42;

    /** Scale factor on every phase's section budget. */
    double sectionScale = 1.0;

    /** Machine model to run on. */
    uarch::CoreConfig coreConfig = uarch::CoreConfig::core2Like();
};

/**
 * Jitter a phase's parameters by up to +/- @p jitter relatively,
 * keeping every field in its valid range.
 */
PhaseParams jitterPhase(const PhaseParams &params, double jitter, Rng &rng);

/** Run one workload and return its per-section counter records. */
std::vector<SectionRecord> runWorkload(const WorkloadSpec &spec,
                                       const RunnerOptions &options);

/** Run every workload in @p suite (fresh core per workload). */
std::vector<SectionRecord> runSuite(const std::vector<WorkloadSpec> &suite,
                                    const RunnerOptions &options);

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_RUNNER_H_
