#include "workload/spec_gen.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace mtperf::workload {

namespace {

/**
 * Accept/reject accounting. The invariant (sampled >= accepted +
 * rejected) catches a sampler that drops candidates without counting
 * them — the generation analogue of the simulator's
 * sections_accounted check.
 */
void
registerGenInvariant()
{
    static const bool once = [] {
        obs::registerInvariant("workload.gen_accounted", [] {
            const std::uint64_t sampled =
                obs::counter("workload.gen_sampled").value();
            const std::uint64_t accepted =
                obs::counter("workload.gen_accepted").value();
            const std::uint64_t rejected =
                obs::counter("workload.gen_rejected").value();
            if (sampled >= accepted + rejected)
                return std::string();
            return "workload.gen_sampled=" + std::to_string(sampled) +
                   " < workload.gen_accepted=" +
                   std::to_string(accepted) +
                   " + workload.gen_rejected=" +
                   std::to_string(rejected);
        });
        return true;
    }();
    (void)once;
}

/** Log-uniform integer in [2^lo, 2^hi] (bytes knobs span decades). */
std::uint64_t
logUniformBytes(Rng &rng, double lo, double hi)
{
    return static_cast<std::uint64_t>(
        std::llround(std::exp2(rng.uniform(lo, hi))));
}

/**
 * Draw one candidate phase. May violate the cross-field invariants;
 * the caller rejects and redraws.
 */
PhaseParams
drawPhase(Rng &rng, const std::string &name)
{
    PhaseParams p;
    p.name = name;

    // Instruction mix. FP-heavy scenarios are a coin flip, so the
    // fleet spans both integer and floating-point bottleneck classes.
    p.loadFrac = rng.uniform(0.12, 0.40);
    p.storeFrac = rng.uniform(0.03, 0.18);
    p.branchFrac = rng.uniform(0.03, 0.24);
    if (rng.chance(0.45)) {
        p.fpAddFrac = rng.uniform(0.02, 0.20);
        p.fpMulFrac = rng.uniform(0.02, 0.18);
        p.fpDivFrac = rng.chance(0.2) ? rng.uniform(0.0, 0.02) : 0.0;
    } else {
        p.fpAddFrac = 0.0;
        p.fpMulFrac = 0.0;
        p.fpDivFrac = 0.0;
    }
    p.intMulFrac = rng.uniform(0.0, 0.05);

    // Data side: working sets from L1-resident to DRAM-bound.
    p.workingSetBytes = logUniformBytes(rng, 16.0, 28.0);
    p.hotFrac = rng.uniform(0.2, 0.7);
    p.hotBytes = logUniformBytes(rng, 12.0, 16.0);
    p.pointerChaseFrac =
        rng.chance(0.5) ? rng.uniform(0.02, 0.20) : 0.0;
    p.chasePageLocalFrac = rng.uniform(0.1, 0.95);
    p.streamFrac = rng.chance(0.6) ? rng.uniform(0.1, 0.9) : 0.0;
    const std::uint64_t strides[] = {8, 16, 24, 32, 64, 128};
    p.strideBytes = strides[rng.uniformInt(std::uint64_t{6})];
    p.zipfS = rng.uniform(0.5, 1.3);

    p.branchEntropy = rng.uniform(0.0, 0.12);
    p.takenBias = rng.uniform(0.6, 0.98);

    p.codeFootprintBytes = logUniformBytes(rng, 12.0, 21.0);
    p.codeZipfS = rng.uniform(0.8, 1.4);
    p.farJumpFrac = rng.uniform(0.02, 0.30);

    p.depGeoP = rng.uniform(0.15, 0.60);
    p.depNoneFrac = rng.uniform(0.2, 0.65);

    p.lcpFrac = rng.chance(0.25) ? rng.uniform(0.01, 0.12) : 0.0;
    p.misalignedFrac =
        rng.chance(0.25) ? rng.uniform(0.02, 0.20) : 0.0;
    p.storeForwardFrac =
        rng.chance(0.25) ? rng.uniform(0.05, 0.35) : 0.0;
    p.storeForwardPartialFrac = rng.uniform(0.1, 0.5);
    p.storeAddrSlowFrac =
        rng.chance(0.25) ? rng.uniform(0.05, 0.30) : 0.0;
    return p;
}

/**
 * Keep drawing until a candidate honours the invariants. The mix cap
 * of 0.95 (tighter than validate()'s 1.0) keeps a plain-ALU residue
 * in every scenario, like real instruction streams have.
 */
PhaseParams
samplePhase(Rng &rng, const std::string &name)
{
    static obs::Counter &sampled =
        obs::counter("workload.gen_sampled");
    static obs::Counter &accepted =
        obs::counter("workload.gen_accepted");
    static obs::Counter &rejected =
        obs::counter("workload.gen_rejected");

    for (int attempt = 0; attempt < 1000; ++attempt) {
        sampled.increment();
        PhaseParams p = drawPhase(rng, name);
        const double mix = p.loadFrac + p.storeFrac + p.branchFrac +
                           p.fpAddFrac + p.fpMulFrac + p.fpDivFrac +
                           p.intMulFrac;
        if (mix > 0.95 ||
            p.pointerChaseFrac + p.streamFrac > 1.0) {
            rejected.increment();
            continue;
        }
        try {
            p.validate();
        } catch (const FatalError &) {
            rejected.increment();
            continue;
        }
        accepted.increment();
        return p;
    }
    mtperf_panic("phase sampler failed to produce a valid candidate "
                 "in 1000 attempts — the sampling ranges must have "
                 "drifted outside the validated space");
}

} // namespace

std::vector<WorkloadSpec>
generateWorkloads(const GenOptions &options)
{
    registerGenInvariant();
    if (options.count == 0)
        throw UsageError("genworkload: count must be at least 1");
    if (options.maxPhases == 0)
        throw UsageError("genworkload: maxPhases must be at least 1");
    if (options.minSections == 0 ||
        options.minSections > options.maxSections)
        throw UsageError(
            "genworkload: section range [" +
            std::to_string(options.minSections) + ", " +
            std::to_string(options.maxSections) + "] is empty");
    if (options.namePrefix.empty())
        throw UsageError("genworkload: name prefix must not be empty");

    Rng rng(options.seed);
    std::vector<WorkloadSpec> workloads;
    workloads.reserve(options.count);
    for (std::size_t i = 0; i < options.count; ++i) {
        WorkloadSpec spec;
        spec.name = options.namePrefix + "_s" +
                    std::to_string(options.seed) + "_" +
                    std::to_string(i);
        const std::size_t phases = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(
                options.maxPhases))) + 1;
        const std::uint64_t total = static_cast<std::uint64_t>(
            rng.uniformInt(
                static_cast<std::int64_t>(options.minSections),
                static_cast<std::int64_t>(options.maxSections)));

        // Split the section budget across phases by random weights,
        // never rounding a phase down to zero sections.
        std::vector<double> weights(phases);
        double weight_sum = 0.0;
        for (auto &w : weights) {
            w = rng.uniform(0.5, 1.5);
            weight_sum += w;
        }
        for (std::size_t ph = 0; ph < phases; ++ph) {
            PhaseSpec phase;
            phase.params =
                samplePhase(rng, "p" + std::to_string(ph));
            phase.sections = static_cast<std::size_t>(
                std::max<std::int64_t>(
                    1, std::llround(static_cast<double>(total) *
                                    weights[ph] / weight_sum)));
            spec.phases.push_back(std::move(phase));
        }
        workloads.push_back(std::move(spec));
    }
    return workloads;
}

} // namespace mtperf::workload
