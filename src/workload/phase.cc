#include "workload/phase.h"

#include "common/logging.h"

namespace mtperf::workload {

namespace {

void
checkFraction(double value, const char *field, const std::string &phase)
{
    if (value < 0.0 || value > 1.0) {
        mtperf_fatal("phase '", phase, "': ", field,
                     " must lie in [0, 1], got ", value);
    }
}

} // namespace

void
PhaseParams::validate() const
{
    checkFraction(loadFrac, "loadFrac", name);
    checkFraction(storeFrac, "storeFrac", name);
    checkFraction(branchFrac, "branchFrac", name);
    checkFraction(fpAddFrac, "fpAddFrac", name);
    checkFraction(fpMulFrac, "fpMulFrac", name);
    checkFraction(fpDivFrac, "fpDivFrac", name);
    checkFraction(intMulFrac, "intMulFrac", name);
    const double mix = loadFrac + storeFrac + branchFrac + fpAddFrac +
                       fpMulFrac + fpDivFrac + intMulFrac;
    if (mix > 1.0) {
        mtperf_fatal("phase '", name,
                     "': instruction mix fractions sum to ", mix,
                     " (> 1)");
    }
    checkFraction(pointerChaseFrac, "pointerChaseFrac", name);
    checkFraction(chasePageLocalFrac, "chasePageLocalFrac", name);
    checkFraction(streamFrac, "streamFrac", name);
    if (pointerChaseFrac + streamFrac > 1.0) {
        mtperf_fatal("phase '", name,
                     "': pointerChaseFrac + streamFrac exceeds 1");
    }
    checkFraction(branchEntropy, "branchEntropy", name);
    checkFraction(takenBias, "takenBias", name);
    checkFraction(farJumpFrac, "farJumpFrac", name);
    checkFraction(depNoneFrac, "depNoneFrac", name);
    checkFraction(lcpFrac, "lcpFrac", name);
    checkFraction(misalignedFrac, "misalignedFrac", name);
    checkFraction(storeForwardFrac, "storeForwardFrac", name);
    checkFraction(storeForwardPartialFrac, "storeForwardPartialFrac",
                  name);
    checkFraction(storeAddrSlowFrac, "storeAddrSlowFrac", name);
    if (depGeoP <= 0.0 || depGeoP > 1.0)
        mtperf_fatal("phase '", name, "': depGeoP must lie in (0, 1]");
    checkFraction(hotFrac, "hotFrac", name);
    if (workingSetBytes == 0)
        mtperf_fatal("phase '", name, "': workingSetBytes must be > 0");
    if (hotBytes == 0)
        mtperf_fatal("phase '", name, "': hotBytes must be > 0");
    if (codeFootprintBytes == 0)
        mtperf_fatal("phase '", name, "': codeFootprintBytes must be > 0");
    if (strideBytes == 0)
        mtperf_fatal("phase '", name, "': strideBytes must be > 0");
    if (zipfS <= 0.0 || codeZipfS <= 0.0)
        mtperf_fatal("phase '", name, "': zipf exponents must be > 0");
}

std::size_t
WorkloadSpec::totalSections() const
{
    std::size_t total = 0;
    for (const auto &phase : phases)
        total += phase.sections;
    return total;
}

} // namespace mtperf::workload
