/**
 * @file
 * Synthetic instruction-stream generation from phase parameters.
 *
 * The generator turns a PhaseParams description into a concrete
 * MicroOp stream: load/store addresses with the requested working set,
 * stride/pointer-chase/zipf structure, branch outcomes with the
 * requested predictability, PC movement over the code footprint, and
 * the encoding/forwarding quirks. The timing core then *measures* the
 * resulting event counts — nothing in the generator writes counters.
 */

#ifndef MTPERF_WORKLOAD_STREAM_GEN_H_
#define MTPERF_WORKLOAD_STREAM_GEN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "uarch/types.h"
#include "workload/phase.h"

namespace mtperf::workload {

/** Stateful generator of one phase's dynamic instruction stream. */
class StreamGenerator
{
  public:
    /**
     * @param params validated phase description.
     * @param seed deterministic stream seed.
     */
    StreamGenerator(const PhaseParams &params, std::uint64_t seed);

    /** Produce the next dynamic instruction. */
    uarch::MicroOp next();

    /**
     * Replace the phase parameters (e.g., per-section jitter) while
     * keeping address-space state, so caches stay meaningfully warm.
     */
    void setParams(const PhaseParams &params);

    const PhaseParams &params() const { return params_; }

  private:
    uarch::Addr pickLoadAddress(uarch::MicroOp &op);
    uarch::Addr pickStoreAddress(uarch::MicroOp &op);
    uarch::Addr randomDataAddress();
    void advancePc(bool taken_branch);
    std::uint64_t scrambledLine(std::uint64_t rank) const;

    PhaseParams params_;
    Rng rng_;

    uarch::Addr dataBase_;
    uarch::Addr hotBase_;
    uarch::Addr codeBase_;
    std::uint64_t dataLines_ = 1;
    std::uint64_t hotLines_ = 1;
    std::uint64_t codeLines_ = 1;

    /**
     * Per-footprint Zipf samplers, rebuilt by setParams (per section)
     * instead of re-deriving the rejection-inversion constants on
     * every address draw. Bit-identical to calling Rng::zipf inline.
     */
    ZipfSampler hotSampler_;
    ZipfSampler dataSampler_;
    ZipfSampler codeSampler_;

    uarch::Addr pc_;
    uarch::Addr streamPos_ = 0;
    std::uint64_t chaseState_ = 0x1234567;
    uarch::Addr lastChaseAddr_ = 0x10000000ULL;

    std::uint64_t opIndex_ = 0;
    std::uint64_t lastChaseLoad_ = 0;
    bool haveChaseLoad_ = false;

    struct RecentStore
    {
        uarch::Addr addr = 0;
        std::uint8_t size = 0;
    };
    std::vector<RecentStore> recentStores_;
    std::size_t recentStoreHead_ = 0;
    std::size_t recentStoreCount_ = 0;
};

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_STREAM_GEN_H_
