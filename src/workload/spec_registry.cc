/**
 * @file
 * The workload registry behind specLikeSuite().
 *
 * Re-points the suite accessors at the declarative spec files (see
 * spec_io.h) while keeping the compiled-in table as the fallback and
 * oracle. The resolved suite is cached per process; the registry
 * never silently swallows a broken spec file — if a directory was
 * selected (by environment or by existing in the source tree), every
 * file in it must load, or the error propagates. Workloads being
 * data means a corrupt spec fails loudly, like a compile error would.
 */

#include "workload/spec_suite.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "obs/metrics.h"
#include "workload/spec_io.h"

namespace mtperf::workload {

namespace {

namespace fs = std::filesystem;

/** Configure-time default: the source tree's specs/ directory. */
std::string
defaultSpecDir()
{
#ifdef MTPERF_SPEC_DIR
    return MTPERF_SPEC_DIR;
#else
    return "";
#endif
}

/** Does @p dir exist and hold at least one *.json file? */
bool
hasSpecFiles(const std::string &dir)
{
    std::error_code ec;
    if (dir.empty() || !fs::is_directory(dir, ec))
        return false;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            return true;
    }
    return false;
}

/**
 * Put a loaded suite into canonical order: compiled-suite order for
 * the names the compiled table knows, then any extra workloads sorted
 * by name. Dataset row order (and thus CSV bytes) therefore does not
 * depend on how the filesystem happened to list the directory.
 */
std::vector<WorkloadSpec>
canonicalSuiteOrder(std::vector<WorkloadSpec> loaded)
{
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < loaded.size(); ++i)
        index.emplace(loaded[i].name, i);

    std::vector<WorkloadSpec> ordered;
    ordered.reserve(loaded.size());
    for (const auto &compiled : compiledSuite()) {
        const auto it = index.find(compiled.name);
        if (it == index.end())
            continue;
        ordered.push_back(std::move(loaded[it->second]));
        index.erase(it);
    }
    std::vector<std::string> extras;
    extras.reserve(index.size());
    for (const auto &[name, i] : index)
        extras.push_back(name);
    std::sort(extras.begin(), extras.end());
    for (const auto &name : extras)
        ordered.push_back(std::move(loaded[index.at(name)]));
    return ordered;
}

struct Registry
{
    std::mutex mutex;
    bool resolved = false;
    std::string source;
    std::vector<WorkloadSpec> suite;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

/** Resolve the suite source; caller holds the registry mutex. */
void
resolveLocked(Registry &reg)
{
    const char *env = std::getenv("MTPERF_SPEC_DIR");
    if (env != nullptr) {
        const std::string dir(env);
        if (dir.empty() || dir == "builtin") {
            reg.suite = compiledSuite();
            reg.source = "builtin (compiled-in table, forced by "
                         "MTPERF_SPEC_DIR)";
        } else {
            reg.suite =
                canonicalSuiteOrder(loadWorkloadSpecDir(dir));
            reg.source = "spec directory " + dir +
                         " (MTPERF_SPEC_DIR)";
        }
        reg.resolved = true;
        return;
    }
    const std::string dir = defaultSpecDir();
    if (hasSpecFiles(dir)) {
        reg.suite = canonicalSuiteOrder(loadWorkloadSpecDir(dir));
        reg.source = "spec directory " + dir;
    } else {
        reg.suite = compiledSuite();
        reg.source = "builtin (compiled-in table)";
    }
    reg.resolved = true;
}

} // namespace

std::vector<WorkloadSpec>
specLikeSuite()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.resolved)
        resolveLocked(reg);
    return reg.suite;
}

std::string
suiteSourceDescription()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!reg.resolved)
        resolveLocked(reg);
    return reg.source;
}

void
reloadSuiteRegistry()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.resolved = false;
    reg.suite.clear();
    reg.source.clear();
}

WorkloadSpec
suiteWorkload(const std::string &name)
{
    const auto suite = specLikeSuite();
    for (const auto &spec : suite) {
        if (spec.name == name)
            return spec;
    }
    std::string available;
    for (const auto &spec : suite) {
        if (!available.empty())
            available += ", ";
        available += spec.name;
    }
    mtperf_fatal("no suite workload named '", name,
                 "' (available: ", available, ")");
}

std::vector<std::string>
suiteWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &spec : specLikeSuite())
        names.push_back(spec.name);
    return names;
}

} // namespace mtperf::workload
