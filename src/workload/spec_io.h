/**
 * @file
 * The declarative workload language: JSON workload-spec documents.
 *
 * A workload is a document, not code. This module defines version 1
 * of the mtperf workload-spec schema (see DESIGN.md §12 for every
 * field, its units and valid range) and converts between WorkloadSpec
 * and its canonical JSON text:
 *
 *     {
 *       "mtperf_workload": 1,
 *       "name": "mcf_like",
 *       "phases": [
 *         { "name": "chase", "sections": 340,
 *           "mix": {...}, "data": {...}, "branches": {...},
 *           "code": {...}, "ilp": {...}, "quirks": {...} }
 *       ]
 *     }
 *
 * The round trip is bit-identical in both directions: serializing a
 * WorkloadSpec and parsing the text back reproduces every field
 * exactly (shortest-round-trip doubles, exact integers), and parsing
 * a canonical document and re-serializing it reproduces the same
 * bytes. That property is what lets a committed spec file replace a
 * compiled-in workload without perturbing a single simulated counter.
 *
 * Strictness: every field is required, unknown or duplicate keys are
 * rejected, byte counts must be integral, and PhaseParams::validate()
 * runs on every phase at load time. All loader errors are thrown as
 * UsageError (CLI exit code 2) naming the offending file, JSON path
 * and field — a workload spec configures the run, so a bad one is a
 * usage problem, never a silent default.
 */

#ifndef MTPERF_WORKLOAD_SPEC_IO_H_
#define MTPERF_WORKLOAD_SPEC_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "workload/phase.h"

namespace mtperf::workload {

/** Schema version this build reads and writes. */
constexpr std::uint64_t kWorkloadSpecVersion = 1;

/** Top-level member naming the schema version. */
inline constexpr const char *kWorkloadSpecVersionKey =
    "mtperf_workload";

/** Canonical JSON text of @p spec (2-space indent, no trailing \n). */
std::string workloadSpecToJson(const WorkloadSpec &spec);

/**
 * Build a WorkloadSpec from a parsed JSON document.
 * @p source names the input in error messages.
 * @throw UsageError naming @p source, the JSON path and the field on
 * any schema violation or validate() failure.
 */
WorkloadSpec workloadSpecFromJson(const json::JsonValue &root,
                                  const std::string &source);

/** Parse @p text as a workload-spec document. @throw UsageError. */
WorkloadSpec parseWorkloadSpec(std::string_view text,
                               const std::string &source);

/**
 * Load a spec file (or standard input when @p path is "-").
 * @throw UsageError naming the file on any read, parse, schema or
 * validation problem.
 */
WorkloadSpec loadWorkloadSpecFile(const std::string &path);

/** Atomically write @p spec's canonical JSON to @p path. */
void saveWorkloadSpecFile(const std::string &path,
                          const WorkloadSpec &spec);

/**
 * Load every "*.json" file in @p dir, sorted by filename.
 * @throw UsageError when the directory cannot be read, any file is
 * invalid, or two files define the same workload name.
 */
std::vector<WorkloadSpec> loadWorkloadSpecDir(const std::string &dir);

} // namespace mtperf::workload

#endif // MTPERF_WORKLOAD_SPEC_IO_H_
