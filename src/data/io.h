/**
 * @file
 * Dataset serialization: CSV and a numeric subset of ARFF.
 *
 * The paper's pipeline exported counter data to WEKA's ARFF format;
 * this library reads and writes both ARFF (numeric attributes only)
 * and plain CSV. A reserved CSV column name, "tag", round-trips the
 * per-row provenance label.
 *
 * Robustness: dataset CSV files are written atomically with an
 * integrity footer (see common/csv.h), readers report errors as
 * "file:line:field", non-finite values are rejected (or dropped under
 * the Drop policy), and salvage mode recovers the valid rows of a
 * damaged file while logging what was dropped.
 */

#ifndef MTPERF_DATA_IO_H_
#define MTPERF_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace mtperf {

struct CsvTable;

/** What to do with NaN/Inf values at dataset ingestion. */
enum class NonFinitePolicy {
    Reject, //!< throw FatalError naming file, line and column
    Drop,   //!< drop the offending row, count and log it
};

/** Parsing policy for dataset readers. */
struct DatasetReadOptions
{
    /**
     * Recover what can be recovered instead of failing: malformed
     * rows are dropped and counted, and a bad or missing integrity
     * footer degrades to a warning. Also switches the non-finite
     * policy to Drop.
     */
    bool salvage = false;

    /** NaN/Inf handling (salvage forces Drop). */
    NonFinitePolicy nonFinite = NonFinitePolicy::Reject;
};

/** What a dataset read dropped or verified, for callers that care. */
struct DatasetReadReport
{
    std::size_t droppedRows = 0;   //!< malformed or non-finite rows
    bool footerVerified = false;   //!< CSV integrity footer checked OK
};

/**
 * Read a dataset from CSV. The column named @p target_name becomes the
 * target; a column named "tag", if present, becomes the row tag; every
 * other column becomes an attribute in file order.
 *
 * @throw FatalError on missing target column, non-numeric cells or
 * non-finite values (under the Reject policy), naming the source
 * position.
 */
Dataset readDatasetCsv(std::istream &in, const std::string &target_name,
                       const DatasetReadOptions &options = {},
                       DatasetReadReport *report = nullptr);

/** Convert an already-parsed CSV table into a dataset. */
Dataset datasetFromCsvTable(const CsvTable &table,
                            const std::string &target_name,
                            const DatasetReadOptions &options = {},
                            DatasetReadReport *report = nullptr);

/** File-path convenience wrapper for readDatasetCsv(). */
Dataset readDatasetCsvFile(const std::string &path,
                           const std::string &target_name,
                           const DatasetReadOptions &options = {},
                           DatasetReadReport *report = nullptr);

/** Write @p ds as CSV: attributes, target column, then a tag column. */
void writeDatasetCsv(std::ostream &out, const Dataset &ds);

/**
 * Atomically write @p ds as CSV with an integrity footer; a killed
 * process never leaves a partial file at @p path.
 */
void writeDatasetCsvFile(const std::string &path, const Dataset &ds);

/**
 * Read a numeric-only ARFF relation; the last numeric attribute is the
 * target (WEKA's convention for regression). String attributes are
 * accepted only for the optional tag.
 */
Dataset readDatasetArff(std::istream &in);

/** File-path convenience wrapper for readDatasetArff(). */
Dataset readDatasetArffFile(const std::string &path);

/** Write @p ds as an ARFF relation named @p relation. */
void writeDatasetArff(std::ostream &out, const Dataset &ds,
                      const std::string &relation);

/** File-path convenience wrapper for writeDatasetArff() (atomic). */
void writeDatasetArffFile(const std::string &path, const Dataset &ds,
                          const std::string &relation);

} // namespace mtperf

#endif // MTPERF_DATA_IO_H_
