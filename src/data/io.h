/**
 * @file
 * Dataset serialization: CSV and a numeric subset of ARFF.
 *
 * The paper's pipeline exported counter data to WEKA's ARFF format;
 * this library reads and writes both ARFF (numeric attributes only)
 * and plain CSV. A reserved CSV column name, "tag", round-trips the
 * per-row provenance label.
 */

#ifndef MTPERF_DATA_IO_H_
#define MTPERF_DATA_IO_H_

#include <iosfwd>
#include <string>

#include "data/dataset.h"

namespace mtperf {

/**
 * Read a dataset from CSV. The column named @p target_name becomes the
 * target; a column named "tag", if present, becomes the row tag; every
 * other column becomes an attribute in file order.
 *
 * @throw FatalError on missing target column or non-numeric cells.
 */
Dataset readDatasetCsv(std::istream &in, const std::string &target_name);

/** File-path convenience wrapper for readDatasetCsv(). */
Dataset readDatasetCsvFile(const std::string &path,
                           const std::string &target_name);

/** Write @p ds as CSV: attributes, target column, then a tag column. */
void writeDatasetCsv(std::ostream &out, const Dataset &ds);

/** File-path convenience wrapper for writeDatasetCsv(). */
void writeDatasetCsvFile(const std::string &path, const Dataset &ds);

/**
 * Read a numeric-only ARFF relation; the last numeric attribute is the
 * target (WEKA's convention for regression). String attributes are
 * accepted only for the optional tag.
 */
Dataset readDatasetArff(std::istream &in);

/** File-path convenience wrapper for readDatasetArff(). */
Dataset readDatasetArffFile(const std::string &path);

/** Write @p ds as an ARFF relation named @p relation. */
void writeDatasetArff(std::ostream &out, const Dataset &ds,
                      const std::string &relation);

/** File-path convenience wrapper for writeDatasetArff(). */
void writeDatasetArffFile(const std::string &path, const Dataset &ds,
                          const std::string &relation);

} // namespace mtperf

#endif // MTPERF_DATA_IO_H_
