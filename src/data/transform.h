/**
 * @file
 * Feature scaling for learners that need standardized inputs.
 *
 * The model tree works on raw event ratios (interpretability requires
 * untransformed coefficients), but the MLP, SVR and k-NN baselines are
 * scale-sensitive, so they standardize internally with this helper.
 */

#ifndef MTPERF_DATA_TRANSFORM_H_
#define MTPERF_DATA_TRANSFORM_H_

#include <span>
#include <vector>

#include "data/dataset.h"

namespace mtperf {

/**
 * Per-column z-score standardizer fit on a training set and applied to
 * train and test rows alike. Columns with zero variance map to zero.
 * The target can optionally be standardized too, with an inverse
 * transform for predictions.
 */
class Standardizer
{
  public:
    Standardizer() = default;

    /** Learn per-attribute and target statistics from @p ds. */
    void fit(const Dataset &ds);

    /** Standardize one attribute row into @p out (resized as needed). */
    void transformRow(std::span<const double> row,
                      std::vector<double> &out) const;

    /** Standardized target value. */
    double transformTarget(double y) const;

    /** Invert transformTarget(). */
    double inverseTarget(double y_std) const;

    bool fitted() const { return !means_.empty(); }
    std::size_t numAttributes() const { return means_.size(); }

  private:
    std::vector<double> means_;
    std::vector<double> stddevs_;
    double targetMean_ = 0.0;
    double targetStddev_ = 1.0;
};

} // namespace mtperf

#endif // MTPERF_DATA_TRANSFORM_H_
