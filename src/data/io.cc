#include "data/io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/csv.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/strings.h"

namespace mtperf {

namespace {

/** "source:line:field N (name)" context for one CSV cell. */
std::string
cellContext(const CsvTable &table, std::size_t row, std::size_t col)
{
    std::ostringstream os;
    os << table.source << ":" << table.rowLine(row) << ":field "
       << (col + 1);
    if (col < table.header.size())
        os << " (" << table.header[col] << ")";
    return os.str();
}

} // namespace

Dataset
readDatasetCsv(std::istream &in, const std::string &target_name,
               const DatasetReadOptions &options,
               DatasetReadReport *report)
{
    CsvReadOptions csv_options;
    csv_options.salvage = options.salvage;
    const CsvTable table = readCsv(in, "<csv>", csv_options);
    return datasetFromCsvTable(table, target_name, options, report);
}

Dataset
datasetFromCsvTable(const CsvTable &table, const std::string &target_name,
                    const DatasetReadOptions &options,
                    DatasetReadReport *report)
{
    const bool drop_bad_rows = options.salvage;
    const bool drop_non_finite =
        options.salvage || options.nonFinite == NonFinitePolicy::Drop;
    const std::size_t target_col = table.columnIndex(target_name);

    // "core" and "corun_set" are reserved provenance columns written
    // by multicore co-run collection; they only count as provenance
    // (not attributes) when both are present, so a hand-made dataset
    // with a single column of either name still round-trips.
    std::size_t probe_core = Schema::npos;
    std::size_t probe_set = Schema::npos;
    for (std::size_t c = 0; c < table.columns(); ++c) {
        if (c == target_col)
            continue;
        if (table.header[c] == "core")
            probe_core = c;
        else if (table.header[c] == "corun_set")
            probe_set = c;
    }
    const bool has_corun =
        probe_core != Schema::npos && probe_set != Schema::npos;
    const std::size_t core_col = has_corun ? probe_core : Schema::npos;
    const std::size_t set_col = has_corun ? probe_set : Schema::npos;

    std::size_t tag_col = Schema::npos;
    std::vector<std::string> attr_names;
    std::vector<std::size_t> attr_cols;
    for (std::size_t c = 0; c < table.columns(); ++c) {
        if (c == target_col || c == core_col || c == set_col)
            continue;
        if (table.header[c] == "tag") {
            tag_col = c;
            continue;
        }
        attr_names.push_back(table.header[c]);
        attr_cols.push_back(c);
    }

    Dataset ds(Schema(std::move(attr_names), target_name));
    std::vector<double> attrs(attr_cols.size());
    std::size_t dropped = table.droppedRows;
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        const auto &row = table.rows[r];
        bool row_ok = true;
        double target = 0.0;
        RowCorun corun;
        try {
            for (std::size_t i = 0; i < attr_cols.size(); ++i) {
                attrs[i] = parseDouble(row[attr_cols[i]],
                                       cellContext(table, r,
                                                   attr_cols[i]));
            }
            target = parseDouble(row[target_col],
                                 cellContext(table, r, target_col));
            if (has_corun) {
                const double core_value =
                    parseDouble(row[core_col],
                                cellContext(table, r, core_col));
                if (core_value < 0 ||
                    core_value != std::floor(core_value)) {
                    mtperf_fatal(cellContext(table, r, core_col),
                                 ": core must be a nonnegative "
                                 "integer, got '",
                                 row[core_col], "'");
                }
                corun.core = static_cast<std::uint32_t>(core_value);
                corun.corunSet = row[set_col];
            }
        } catch (const FatalError &) {
            if (!drop_bad_rows)
                throw;
            row_ok = false;
        }
        if (row_ok) {
            std::size_t bad_col = Schema::npos;
            for (std::size_t i = 0; i < attr_cols.size(); ++i) {
                if (!std::isfinite(attrs[i])) {
                    bad_col = attr_cols[i];
                    break;
                }
            }
            if (bad_col == Schema::npos && !std::isfinite(target))
                bad_col = target_col;
            if (bad_col != Schema::npos) {
                if (!drop_non_finite) {
                    mtperf_fatal(cellContext(table, r, bad_col),
                                 ": non-finite value '", row[bad_col],
                                 "' (use --salvage to drop such rows)");
                }
                row_ok = false;
            }
        }
        if (!row_ok) {
            ++dropped;
            continue;
        }
        std::string tag =
            tag_col == Schema::npos ? std::string() : row[tag_col];
        if (has_corun)
            ds.addRowCorun(attrs, target, std::move(tag),
                           std::move(corun));
        else
            ds.addRow(attrs, target, std::move(tag));
    }
    if (dropped > table.droppedRows) {
        warn(table.source, ": dropped ", dropped - table.droppedRows,
             " row", dropped - table.droppedRows == 1 ? "" : "s",
             " with unparsable or non-finite values");
    }
    if (report != nullptr) {
        report->droppedRows = dropped;
        report->footerVerified = table.footerVerified;
    }
    return ds;
}

Dataset
readDatasetCsvFile(const std::string &path, const std::string &target_name,
                   const DatasetReadOptions &options,
                   DatasetReadReport *report)
{
    MTPERF_FAULT_POINT("fs.open.fail");
    std::ifstream in(path);
    if (!in)
        mtperf_fatal("cannot open dataset file: ", path);
    CsvReadOptions csv_options;
    csv_options.salvage = options.salvage;
    const CsvTable table = readCsv(in, path, csv_options);
    return datasetFromCsvTable(table, target_name, options, report);
}

namespace {

CsvTable
datasetToCsvTable(const Dataset &ds)
{
    CsvTable table;
    table.header = ds.schema().attributeNames();
    table.header.push_back(ds.schema().targetName());
    table.header.push_back("tag");
    // Reserved provenance columns, written only for co-run datasets
    // so single-core CSV bytes stay exactly as they always were.
    if (ds.hasCorun()) {
        table.header.push_back("core");
        table.header.push_back("corun_set");
    }
    table.rows.reserve(ds.size());
    for (std::size_t r = 0; r < ds.size(); ++r) {
        std::vector<std::string> row;
        row.reserve(table.header.size());
        for (double v : ds.row(r)) {
            std::ostringstream os;
            os.precision(12);
            os << v;
            row.push_back(os.str());
        }
        std::ostringstream os;
        os.precision(12);
        os << ds.target(r);
        row.push_back(os.str());
        row.push_back(ds.tag(r));
        if (ds.hasCorun()) {
            row.push_back(std::to_string(ds.corun(r).core));
            row.push_back(ds.corun(r).corunSet);
        }
        table.rows.push_back(std::move(row));
    }
    return table;
}

} // namespace

void
writeDatasetCsv(std::ostream &out, const Dataset &ds)
{
    writeCsv(out, datasetToCsvTable(ds));
}

void
writeDatasetCsvFile(const std::string &path, const Dataset &ds)
{
    writeCsvFile(path, datasetToCsvTable(ds));
}

Dataset
readDatasetArff(std::istream &in)
{
    std::vector<std::string> numeric_names;
    std::size_t tag_attr = Schema::npos;
    std::vector<bool> is_numeric;
    std::string line;
    bool in_data = false;

    Dataset ds;
    bool schema_built = false;

    while (std::getline(in, line)) {
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '%')
            continue;
        const std::string lower = toLower(trimmed);
        if (!in_data) {
            if (startsWith(lower, "@relation")) {
                continue;
            } else if (startsWith(lower, "@attribute")) {
                std::istringstream fields(trimmed);
                std::string keyword, name, type;
                fields >> keyword >> name;
                std::getline(fields, type);
                type = toLower(trim(type));
                if (type == "numeric" || type == "real" ||
                    type == "integer") {
                    numeric_names.push_back(name);
                    is_numeric.push_back(true);
                } else if (type == "string") {
                    if (tag_attr != Schema::npos)
                        mtperf_fatal("ARFF: at most one string attribute "
                                     "(the tag) is supported");
                    tag_attr = is_numeric.size();
                    is_numeric.push_back(false);
                } else {
                    mtperf_fatal("ARFF: unsupported attribute type '", type,
                                 "' for attribute ", name);
                }
            } else if (startsWith(lower, "@data")) {
                if (numeric_names.size() < 2) {
                    mtperf_fatal("ARFF: need at least one attribute and "
                                 "one target");
                }
                const std::string target_name = numeric_names.back();
                numeric_names.pop_back();
                ds = Dataset(Schema(numeric_names, target_name));
                schema_built = true;
                in_data = true;
            } else {
                mtperf_fatal("ARFF: unexpected header line: ", trimmed);
            }
        } else {
            const auto fields = parseCsvLine(trimmed);
            if (fields.size() != is_numeric.size()) {
                mtperf_fatal("ARFF: data row has ", fields.size(),
                             " fields, expected ", is_numeric.size());
            }
            std::vector<double> values;
            std::string tag;
            for (std::size_t i = 0; i < fields.size(); ++i) {
                if (i == tag_attr) {
                    tag = trim(fields[i]);
                    if (tag.size() >= 2 && tag.front() == '\'' &&
                        tag.back() == '\'') {
                        tag = tag.substr(1, tag.size() - 2);
                    }
                } else {
                    const double v = parseDouble(fields[i], "ARFF cell");
                    if (!std::isfinite(v))
                        mtperf_fatal("ARFF: non-finite value '",
                                     fields[i], "'");
                    values.push_back(v);
                }
            }
            const double target = values.back();
            values.pop_back();
            ds.addRow(values, target, std::move(tag));
        }
    }
    if (!schema_built)
        mtperf_fatal("ARFF: missing @data section");
    return ds;
}

Dataset
readDatasetArffFile(const std::string &path)
{
    MTPERF_FAULT_POINT("fs.open.fail");
    std::ifstream in(path);
    if (!in)
        mtperf_fatal("cannot open ARFF file: ", path);
    return readDatasetArff(in);
}

void
writeDatasetArff(std::ostream &out, const Dataset &ds,
                 const std::string &relation)
{
    out << "@relation " << relation << "\n\n";
    for (std::size_t a = 0; a < ds.numAttributes(); ++a)
        out << "@attribute " << ds.schema().attributeName(a) << " numeric\n";
    out << "@attribute tag string\n";
    out << "@attribute " << ds.schema().targetName() << " numeric\n";
    out << "\n@data\n";
    out.precision(12);
    for (std::size_t r = 0; r < ds.size(); ++r) {
        for (double v : ds.row(r))
            out << v << ',';
        out << '\'' << ds.tag(r) << "'," << ds.target(r) << '\n';
    }
}

void
writeDatasetArffFile(const std::string &path, const Dataset &ds,
                     const std::string &relation)
{
    atomicWriteFile(path, [&](std::ostream &out) {
        writeDatasetArff(out, ds, relation);
    });
}

} // namespace mtperf
