#include "data/dataset.h"

#include "common/logging.h"

namespace mtperf {

Dataset::Dataset(Schema schema) : schema_(std::move(schema))
{
}

void
Dataset::addRow(std::span<const double> attrs, double target, std::string tag)
{
    if (attrs.size() != schema_.numAttributes()) {
        mtperf_fatal("row width ", attrs.size(), " does not match schema (",
                     schema_.numAttributes(), " attributes)");
    }
    if (!corun_.empty())
        mtperf_fatal("cannot mix rows with and without co-run provenance");
    values_.insert(values_.end(), attrs.begin(), attrs.end());
    targets_.push_back(target);
    tags_.push_back(std::move(tag));
}

void
Dataset::addRowCorun(std::span<const double> attrs, double target,
                     std::string tag, RowCorun corun)
{
    if (attrs.size() != schema_.numAttributes()) {
        mtperf_fatal("row width ", attrs.size(), " does not match schema (",
                     schema_.numAttributes(), " attributes)");
    }
    if (corun_.size() != targets_.size())
        mtperf_fatal("cannot mix rows with and without co-run provenance");
    values_.insert(values_.end(), attrs.begin(), attrs.end());
    targets_.push_back(target);
    tags_.push_back(std::move(tag));
    corun_.push_back(std::move(corun));
}

const RowCorun &
Dataset::corun(std::size_t r) const
{
    mtperf_assert(hasCorun() && r < corun_.size(),
                  "co-run provenance index out of range");
    return corun_[r];
}

std::span<const double>
Dataset::row(std::size_t r) const
{
    mtperf_assert(r < size(), "row index out of range");
    return {values_.data() + r * numAttributes(), numAttributes()};
}

double
Dataset::value(std::size_t r, std::size_t a) const
{
    mtperf_assert(r < size() && a < numAttributes(),
                  "dataset index out of range");
    return values_[r * numAttributes() + a];
}

double
Dataset::target(std::size_t r) const
{
    mtperf_assert(r < size(), "row index out of range");
    return targets_[r];
}

const std::string &
Dataset::tag(std::size_t r) const
{
    mtperf_assert(r < size(), "row index out of range");
    return tags_[r];
}

std::vector<double>
Dataset::column(std::size_t a) const
{
    mtperf_assert(a < numAttributes(), "attribute index out of range");
    std::vector<double> col;
    col.reserve(size());
    for (std::size_t r = 0; r < size(); ++r)
        col.push_back(value(r, a));
    return col;
}

Dataset
Dataset::subset(std::span<const std::size_t> indices) const
{
    Dataset out(schema_);
    for (std::size_t idx : indices) {
        if (hasCorun())
            out.addRowCorun(row(idx), target(idx), tag(idx), corun(idx));
        else
            out.addRow(row(idx), target(idx), tag(idx));
    }
    return out;
}

Dataset
Dataset::withAttributes(
    std::span<const std::size_t> attribute_indices) const
{
    std::vector<Attribute> attributes;
    attributes.reserve(attribute_indices.size());
    for (std::size_t a : attribute_indices) {
        mtperf_assert(a < numAttributes(),
                      "attribute index out of range");
        attributes.push_back(schema_.attribute(a));
    }
    Dataset out(Schema(std::move(attributes), schema_.targetName()));
    std::vector<double> projected(attribute_indices.size());
    for (std::size_t r = 0; r < size(); ++r) {
        const auto full_row = row(r);
        for (std::size_t i = 0; i < attribute_indices.size(); ++i)
            projected[i] = full_row[attribute_indices[i]];
        if (hasCorun())
            out.addRowCorun(projected, target(r), tag(r), corun(r));
        else
            out.addRow(projected, target(r), tag(r));
    }
    return out;
}

void
Dataset::append(const Dataset &other)
{
    if (!(schema_ == other.schema_))
        mtperf_fatal("cannot append dataset with a different schema");
    for (std::size_t r = 0; r < other.size(); ++r) {
        if (other.hasCorun())
            addRowCorun(other.row(r), other.target(r), other.tag(r),
                        other.corun(r));
        else
            addRow(other.row(r), other.target(r), other.tag(r));
    }
}

} // namespace mtperf
