/**
 * @file
 * The in-memory tabular dataset the learners consume.
 *
 * A Dataset is a schema, a dense row-major block of attribute values,
 * one target value per row, and an optional provenance tag per row
 * (e.g., "mcf_like/section_412") used by the analysis layer to report
 * which workloads populate which performance class.
 */

#ifndef MTPERF_DATA_DATASET_H_
#define MTPERF_DATA_DATASET_H_

#include <span>
#include <string>
#include <vector>

#include "data/attribute.h"

namespace mtperf {

/**
 * Per-row co-run provenance: which core produced a row and under
 * which co-run set. Rows from single-core runs carry none.
 */
struct RowCorun
{
    std::uint32_t core = 0;
    std::string corunSet;
};

/** Numeric regression dataset with named attributes and a target. */
class Dataset
{
  public:
    Dataset() = default;

    /** Construct an empty dataset over @p schema. */
    explicit Dataset(Schema schema);

    const Schema &schema() const { return schema_; }
    std::size_t numAttributes() const { return schema_.numAttributes(); }
    std::size_t size() const { return targets_.size(); }
    bool empty() const { return targets_.empty(); }

    /**
     * Append a row.
     * @param attrs one value per schema attribute.
     * @param target the dependent-variable value.
     * @param tag optional provenance label.
     * @throw FatalError if @p attrs has the wrong width.
     */
    void addRow(std::span<const double> attrs, double target,
                std::string tag = "");

    /**
     * Append a row carrying co-run provenance. A dataset either has
     * provenance on every row or on none; mixing the two addRow
     * flavours is a fatal error.
     */
    void addRowCorun(std::span<const double> attrs, double target,
                     std::string tag, RowCorun corun);

    /** True when rows carry co-run provenance. */
    bool hasCorun() const { return !corun_.empty(); }

    /** Co-run provenance of row @p r. @pre hasCorun(). */
    const RowCorun &corun(std::size_t r) const;

    /** Attribute values of row @p r. */
    std::span<const double> row(std::size_t r) const;

    /** Value of attribute @p a in row @p r. */
    double value(std::size_t r, std::size_t a) const;

    /** Target value of row @p r. */
    double target(std::size_t r) const;

    /** Provenance tag of row @p r (may be empty). */
    const std::string &tag(std::size_t r) const;

    /** All targets, in row order. */
    const std::vector<double> &targets() const { return targets_; }

    /**
     * The dense row-major attribute block, size() * numAttributes()
     * values. This is what batch prediction consumes directly.
     */
    std::span<const double> flatValues() const { return values_; }

    /** Copy of attribute column @p a. */
    std::vector<double> column(std::size_t a) const;

    /** New dataset with the rows selected by @p indices, in order. */
    Dataset subset(std::span<const std::size_t> indices) const;

    /**
     * New dataset keeping only the attributes selected by
     * @p attribute_indices (in the given order); rows, targets and
     * tags are preserved. Used for counter-subset ablations.
     */
    Dataset withAttributes(
        std::span<const std::size_t> attribute_indices) const;

    /**
     * Append all rows of @p other.
     * @throw FatalError if schemas differ.
     */
    void append(const Dataset &other);

  private:
    Schema schema_;
    std::vector<double> values_;   //!< row-major, size() * numAttributes()
    std::vector<double> targets_;
    std::vector<std::string> tags_;
    std::vector<RowCorun> corun_;  //!< empty, or one entry per row
};

} // namespace mtperf

#endif // MTPERF_DATA_DATASET_H_
