#include "data/folds.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace mtperf {

std::vector<std::vector<std::size_t>>
kfoldIndices(std::size_t n, std::size_t k, Rng &rng)
{
    if (k < 2)
        mtperf_fatal("k-fold requires k >= 2, got k=", k);
    if (k > n)
        mtperf_fatal("k-fold requires k <= n, got k=", k, " n=", n);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    std::vector<std::vector<std::size_t>> folds(k);
    for (std::size_t i = 0; i < n; ++i)
        folds[i % k].push_back(order[i]);
    return folds;
}

Split
splitForFold(const std::vector<std::vector<std::size_t>> &folds,
             std::size_t fold)
{
    mtperf_assert(fold < folds.size(), "fold index out of range");
    Split split;
    split.test = folds[fold];
    for (std::size_t f = 0; f < folds.size(); ++f) {
        if (f == fold)
            continue;
        split.train.insert(split.train.end(), folds[f].begin(),
                           folds[f].end());
    }
    std::sort(split.train.begin(), split.train.end());
    std::sort(split.test.begin(), split.test.end());
    return split;
}

Split
holdoutSplit(std::size_t n, double test_fraction, Rng &rng)
{
    if (n < 2)
        mtperf_fatal("hold-out split needs at least two rows");
    if (test_fraction <= 0.0 || test_fraction >= 1.0)
        mtperf_fatal("test fraction must be in (0, 1)");

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);

    auto n_test = static_cast<std::size_t>(
        static_cast<double>(n) * test_fraction);
    n_test = std::clamp<std::size_t>(n_test, 1, n - 1);

    Split split;
    split.test.assign(order.begin(), order.begin() + n_test);
    split.train.assign(order.begin() + n_test, order.end());
    std::sort(split.train.begin(), split.train.end());
    std::sort(split.test.begin(), split.test.end());
    return split;
}

Dataset
trainSubset(const Dataset &ds, const Split &split)
{
    return ds.subset(split.train);
}

Dataset
testSubset(const Dataset &ds, const Split &split)
{
    return ds.subset(split.test);
}

} // namespace mtperf
