#include "data/transform.h"

#include <cmath>

#include "common/logging.h"
#include "math/stats.h"

namespace mtperf {

void
Standardizer::fit(const Dataset &ds)
{
    if (ds.empty())
        mtperf_fatal("cannot fit a standardizer on an empty dataset");
    const std::size_t n_attr = ds.numAttributes();
    means_.assign(n_attr, 0.0);
    stddevs_.assign(n_attr, 1.0);

    std::vector<OnlineStats> stats(n_attr);
    OnlineStats target_stats;
    for (std::size_t r = 0; r < ds.size(); ++r) {
        const auto row = ds.row(r);
        for (std::size_t a = 0; a < n_attr; ++a)
            stats[a].add(row[a]);
        target_stats.add(ds.target(r));
    }
    for (std::size_t a = 0; a < n_attr; ++a) {
        means_[a] = stats[a].mean();
        const double sd = stats[a].stddev();
        stddevs_[a] = sd > 0.0 ? sd : 1.0;
    }
    targetMean_ = target_stats.mean();
    const double tsd = target_stats.stddev();
    targetStddev_ = tsd > 0.0 ? tsd : 1.0;
}

void
Standardizer::transformRow(std::span<const double> row,
                           std::vector<double> &out) const
{
    mtperf_assert(fitted(), "standardizer used before fit()");
    mtperf_assert(row.size() == means_.size(),
                  "standardizer row width mismatch");
    out.resize(row.size());
    for (std::size_t a = 0; a < row.size(); ++a)
        out[a] = (row[a] - means_[a]) / stddevs_[a];
}

double
Standardizer::transformTarget(double y) const
{
    mtperf_assert(fitted(), "standardizer used before fit()");
    return (y - targetMean_) / targetStddev_;
}

double
Standardizer::inverseTarget(double y_std) const
{
    mtperf_assert(fitted(), "standardizer used before fit()");
    return y_std * targetStddev_ + targetMean_;
}

} // namespace mtperf
