#include "data/attribute.h"

#include "common/logging.h"

namespace mtperf {

Schema::Schema(std::vector<std::string> attribute_names,
               std::string target_name)
    : targetName_(std::move(target_name))
{
    attributes_.reserve(attribute_names.size());
    for (auto &name : attribute_names)
        attributes_.push_back({std::move(name), ""});
}

Schema::Schema(std::vector<Attribute> attributes, std::string target_name)
    : attributes_(std::move(attributes)), targetName_(std::move(target_name))
{
}

const Attribute &
Schema::attribute(std::size_t i) const
{
    mtperf_assert(i < attributes_.size(), "attribute index out of range");
    return attributes_[i];
}

const std::string &
Schema::attributeName(std::size_t i) const
{
    return attribute(i).name;
}

std::vector<std::string>
Schema::attributeNames() const
{
    std::vector<std::string> names;
    names.reserve(attributes_.size());
    for (const auto &a : attributes_)
        names.push_back(a.name);
    return names;
}

std::size_t
Schema::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
        if (attributes_[i].name == name)
            return i;
    }
    return npos;
}

std::size_t
Schema::requireIndexOf(const std::string &name) const
{
    const std::size_t i = indexOf(name);
    if (i == npos)
        mtperf_fatal("schema has no attribute named '", name, "'");
    return i;
}

bool
Schema::operator==(const Schema &other) const
{
    if (targetName_ != other.targetName_ ||
        attributes_.size() != other.attributes_.size()) {
        return false;
    }
    for (std::size_t i = 0; i < attributes_.size(); ++i) {
        if (attributes_[i].name != other.attributes_[i].name)
            return false;
    }
    return true;
}

} // namespace mtperf
