/**
 * @file
 * Attribute metadata and schema for tabular datasets.
 *
 * All attributes in this library are numeric (the paper's predictors
 * are per-instruction event ratios); a schema is an ordered list of
 * named attributes plus a named target.
 */

#ifndef MTPERF_DATA_ATTRIBUTE_H_
#define MTPERF_DATA_ATTRIBUTE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mtperf {

/** A named numeric attribute with an optional human description. */
struct Attribute
{
    std::string name;
    std::string description;
};

/** Ordered attribute list plus target name. */
class Schema
{
  public:
    Schema() = default;

    /** Build from attribute names; descriptions default to empty. */
    Schema(std::vector<std::string> attribute_names,
           std::string target_name);

    /** Build from full attribute records. */
    Schema(std::vector<Attribute> attributes, std::string target_name);

    std::size_t numAttributes() const { return attributes_.size(); }
    const Attribute &attribute(std::size_t i) const;
    const std::string &attributeName(std::size_t i) const;
    const std::string &targetName() const { return targetName_; }

    /** All attribute names in order. */
    std::vector<std::string> attributeNames() const;

    /**
     * Index of the named attribute.
     * @return the index, or npos when absent.
     */
    std::size_t indexOf(const std::string &name) const;

    /** Like indexOf but throws FatalError when absent. */
    std::size_t requireIndexOf(const std::string &name) const;

    /** Sentinel returned by indexOf for missing names. */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    bool operator==(const Schema &other) const;

  private:
    std::vector<Attribute> attributes_;
    std::string targetName_;
};

} // namespace mtperf

#endif // MTPERF_DATA_ATTRIBUTE_H_
