/**
 * @file
 * Dataset partitioning for hold-out and k-fold cross-validation.
 */

#ifndef MTPERF_DATA_FOLDS_H_
#define MTPERF_DATA_FOLDS_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace mtperf {

/** A train/test split expressed as row-index lists. */
struct Split
{
    std::vector<std::size_t> train;
    std::vector<std::size_t> test;
};

/**
 * Shuffle row indices and cut them into @p k folds whose sizes differ
 * by at most one.
 *
 * @throw FatalError if k < 2 or k > n.
 */
std::vector<std::vector<std::size_t>> kfoldIndices(std::size_t n,
                                                   std::size_t k, Rng &rng);

/** Train/test index split for fold @p fold of @p folds. */
Split splitForFold(const std::vector<std::vector<std::size_t>> &folds,
                   std::size_t fold);

/**
 * Single shuffled hold-out split with @p test_fraction of rows in the
 * test set (at least one row on each side).
 */
Split holdoutSplit(std::size_t n, double test_fraction, Rng &rng);

/** Materialize the train part of @p split from @p ds. */
Dataset trainSubset(const Dataset &ds, const Split &split);

/** Materialize the test part of @p split from @p ds. */
Dataset testSubset(const Dataset &ds, const Split &split);

} // namespace mtperf

#endif // MTPERF_DATA_FOLDS_H_
