/**
 * @file
 * Linear least-squares solvers.
 *
 * The model-tree leaf models and the baseline regressors all reduce to
 * solving min_x ||A x - b||_2. The primary solver uses Householder QR,
 * which is numerically stable for the tall skinny systems that arise
 * (hundreds to thousands of rows, ~20 columns). When A is (near) rank
 * deficient — common at small leaves where an event never fires — a
 * small ridge penalty is added, which both regularizes and guarantees
 * full rank.
 */

#ifndef MTPERF_MATH_LEAST_SQUARES_H_
#define MTPERF_MATH_LEAST_SQUARES_H_

#include <vector>

#include "math/matrix.h"

namespace mtperf {

/** Result of a least-squares solve. */
struct LeastSquaresResult
{
    /** Solution vector x. */
    std::vector<double> x;
    /** True if the ridge fallback was used (rank-deficient system). */
    bool regularized = false;
};

/**
 * Solve min_x ||A x - b||_2 by Householder QR.
 *
 * @param a design matrix, rows >= cols required for a unique solution;
 *          fewer rows than columns triggers the ridge fallback.
 * @param b right-hand side with a.rows() entries.
 * @param ridge penalty used by the fallback when the QR factors are
 *          rank-deficient (diagonal of R has a tiny entry).
 * @throw FatalError if dimensions are inconsistent.
 */
LeastSquaresResult solveLeastSquares(const Matrix &a,
                                     const std::vector<double> &b,
                                     double ridge = 1e-8);

/**
 * Solve the ridge-regularized normal equations
 * (A^T A + ridge I) x = A^T b directly (Cholesky).
 *
 * Exposed for callers that always want regularization, e.g. the MLP
 * output layer initialization and kernel methods.
 */
std::vector<double> solveRidge(const Matrix &a, const std::vector<double> &b,
                               double ridge);

} // namespace mtperf

#endif // MTPERF_MATH_LEAST_SQUARES_H_
