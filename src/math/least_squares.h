/**
 * @file
 * Linear least-squares solvers.
 *
 * The model-tree leaf models and the baseline regressors all reduce to
 * solving min_x ||A x - b||_2. The primary solver uses Householder QR,
 * which is numerically stable for the tall skinny systems that arise
 * (hundreds to thousands of rows, ~20 columns). When A is (near) rank
 * deficient — common at small leaves where an event never fires — a
 * small ridge penalty is added, which both regularizes and guarantees
 * full rank.
 */

#ifndef MTPERF_MATH_LEAST_SQUARES_H_
#define MTPERF_MATH_LEAST_SQUARES_H_

#include <span>
#include <vector>

#include "math/matrix.h"

namespace mtperf {

/** Result of a least-squares solve. */
struct LeastSquaresResult
{
    /** Solution vector x. */
    std::vector<double> x;
    /** True if the ridge fallback was used (rank-deficient system). */
    bool regularized = false;
};

/**
 * Solve min_x ||A x - b||_2 by Householder QR.
 *
 * @param a design matrix, rows >= cols required for a unique solution;
 *          fewer rows than columns triggers the ridge fallback.
 * @param b right-hand side with a.rows() entries.
 * @param ridge penalty used by the fallback when the QR factors are
 *          rank-deficient (diagonal of R has a tiny entry).
 * @throw FatalError if dimensions are inconsistent.
 */
LeastSquaresResult solveLeastSquares(const Matrix &a,
                                     const std::vector<double> &b,
                                     double ridge = 1e-8);

/**
 * Solve the ridge-regularized normal equations
 * (A^T A + ridge I) x = A^T b directly (Cholesky).
 *
 * Exposed for callers that always want regularization, e.g. the MLP
 * output layer initialization and kernel methods.
 */
std::vector<double> solveRidge(const Matrix &a, const std::vector<double> &b,
                               double ridge);

/**
 * Accumulated sufficient statistics for least-squares fits over one
 * fixed row set: the Gram matrix X^T X and moment vector X^T y over a
 * feature superset plus an implicit trailing intercept column of
 * ones. Once the rows have been folded in (one pass, O(n k^2 / 2)),
 * a fit over *any subset* of the features solves a (s+1) x (s+1)
 * principal-submatrix system in O(s^3) without touching the rows
 * again — which is what makes M5's greedy term elimination cheap.
 *
 * Numerics policy mirrors solveLeastSquares(): an unregularized solve
 * is attempted first (Cholesky with a relative rank test instead of
 * QR), and rank deficiency or an underdetermined subset falls back to
 * the same escalating-ridge normal equations as solveRidge().
 */
class GramSystem
{
  public:
    /** @param features number of feature columns (intercept excluded). */
    explicit GramSystem(std::size_t features);

    /** Fold in one row: @p vals has features() entries, @p y a target. */
    void addRow(const double *vals, double y);

    std::size_t features() const { return features_; }
    std::size_t rowCount() const { return rows_; }

    /**
     * Solve min_x ||X_S x - y||_2 over the feature subset @p subset
     * (indices into the feature columns, strictly increasing).
     * @return coefficients for the subset features in order, with the
     *         intercept last (subset.size() + 1 entries).
     */
    std::vector<double> solveSubset(std::span<const std::size_t> subset,
                                    double ridge = 1e-8) const;

  private:
    std::size_t features_;
    std::size_t rows_ = 0;
    Matrix xtx_;              //!< (features+1)^2, intercept last
    std::vector<double> xty_; //!< features+1 entries
};

} // namespace mtperf

#endif // MTPERF_MATH_LEAST_SQUARES_H_
