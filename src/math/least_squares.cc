#include "math/least_squares.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtperf {

namespace {

/**
 * In-place Householder QR on a copy of the augmented system.
 * Returns false when R is rank-deficient (tiny diagonal), in which
 * case the caller should fall back to ridge regression.
 */
bool
qrSolve(Matrix a, std::vector<double> b, std::vector<double> &x)
{
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n)
        return false;

    // Scale tolerance by the magnitude of A so the rank test is
    // invariant under uniform scaling of the inputs.
    const double tol = 1e-12 * std::max(1.0, a.maxAbs());

    for (std::size_t k = 0; k < n; ++k) {
        // Householder vector for column k, rows k..m-1.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i)
            norm += a(i, k) * a(i, k);
        norm = std::sqrt(norm);
        if (norm <= tol)
            return false;

        const double alpha = a(k, k) > 0 ? -norm : norm;
        // v = x - alpha e1; store v in the column (normalized by v[0]).
        double vkk = a(k, k) - alpha;
        std::vector<double> v(m - k);
        v[0] = vkk;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = a(i, k);
        double vtv = 0.0;
        for (double val : v)
            vtv += val * val;
        if (vtv <= tol * tol)
            return false;

        // Apply H = I - 2 v v^T / (v^T v) to remaining columns and b.
        for (std::size_t j = k; j < n; ++j) {
            double dot = 0.0;
            for (std::size_t i = k; i < m; ++i)
                dot += v[i - k] * a(i, j);
            const double f = 2.0 * dot / vtv;
            for (std::size_t i = k; i < m; ++i)
                a(i, j) -= f * v[i - k];
        }
        double dot_b = 0.0;
        for (std::size_t i = k; i < m; ++i)
            dot_b += v[i - k] * b[i];
        const double fb = 2.0 * dot_b / vtv;
        for (std::size_t i = k; i < m; ++i)
            b[i] -= fb * v[i - k];

        a(k, k) = alpha;
    }

    // Back substitution on the upper-triangular R.
    x.assign(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t j = ri + 1; j < n; ++j)
            acc -= a(ri, j) * x[j];
        const double diag = a(ri, ri);
        if (std::abs(diag) <= tol)
            return false;
        x[ri] = acc / diag;
    }
    return true;
}

/**
 * Cholesky solve of the SPD system s x = rhs; returns false when a
 * pivot falls to @p tol or below (tol = 0 is the plain SPD test; a
 * positive tol acts as the rank test the QR path does with its tiny
 * R-diagonal check).
 */
bool
choleskySolve(Matrix s, std::vector<double> rhs, std::vector<double> &x,
              double tol = 0.0)
{
    const std::size_t n = s.rows();
    for (std::size_t j = 0; j < n; ++j) {
        double d = s(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= s(j, k) * s(j, k);
        if (d <= tol)
            return false;
        const double l = std::sqrt(d);
        s(j, j) = l;
        for (std::size_t i = j + 1; i < n; ++i) {
            double v = s(i, j);
            for (std::size_t k = 0; k < j; ++k)
                v -= s(i, k) * s(j, k);
            s(i, j) = v / l;
        }
    }
    // Forward substitution L y = rhs.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = rhs[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= s(i, k) * rhs[k];
        rhs[i] = acc / s(i, i);
    }
    // Back substitution L^T x = y.
    x.assign(n, 0.0);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = rhs[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= s(k, ii) * x[k];
        x[ii] = acc / s(ii, ii);
    }
    return true;
}

} // namespace

std::vector<double>
solveRidge(const Matrix &a, const std::vector<double> &b, double ridge)
{
    mtperf_assert(a.rows() == b.size(),
                  "least squares dimension mismatch");
    const std::size_t n = a.cols();
    // Form the normal equations A^T A + ridge I and A^T b.
    Matrix s(n, n);
    std::vector<double> rhs(n, 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        const double *row = a.rowData(r);
        for (std::size_t i = 0; i < n; ++i) {
            rhs[i] += row[i] * b[r];
            for (std::size_t j = i; j < n; ++j)
                s(i, j) += row[i] * row[j];
        }
    }
    for (std::size_t i = 0; i < n; ++i) {
        s(i, i) += ridge;
        for (std::size_t j = 0; j < i; ++j)
            s(i, j) = s(j, i);
    }

    std::vector<double> x;
    double lambda = ridge;
    // A tiny ridge can still be numerically non-SPD for wildly scaled
    // inputs; escalate the penalty geometrically until Cholesky works.
    for (int attempt = 0; attempt < 30; ++attempt) {
        if (choleskySolve(s, rhs, x))
            return x;
        for (std::size_t i = 0; i < n; ++i)
            s(i, i) += lambda * 9.0;
        lambda *= 10.0;
    }
    mtperf_panic("ridge solve failed to converge to an SPD system");
}

LeastSquaresResult
solveLeastSquares(const Matrix &a, const std::vector<double> &b, double ridge)
{
    if (a.rows() != b.size())
        mtperf_fatal("least squares: A has ", a.rows(), " rows but b has ",
                     b.size(), " entries");
    if (a.cols() == 0)
        return {{}, false};

    LeastSquaresResult result;
    if (qrSolve(a, b, result.x))
        return result;

    result.x = solveRidge(a, b, ridge);
    result.regularized = true;
    return result;
}

GramSystem::GramSystem(std::size_t features)
    : features_(features),
      xtx_(features + 1, features + 1),
      xty_(features + 1, 0.0)
{
}

void
GramSystem::addRow(const double *vals, double y)
{
    // Upper triangle only; solveSubset mirrors on extraction. The
    // intercept column of ones lives at index features_.
    const std::size_t k = features_;
    for (std::size_t i = 0; i < k; ++i) {
        const double vi = vals[i];
        xty_[i] += vi * y;
        for (std::size_t j = i; j < k; ++j)
            xtx_(i, j) += vi * vals[j];
        xtx_(i, k) += vi;
    }
    xtx_(k, k) += 1.0;
    xty_[k] += y;
    ++rows_;
}

std::vector<double>
GramSystem::solveSubset(std::span<const std::size_t> subset,
                        double ridge) const
{
    const std::size_t s = subset.size() + 1; // chosen features + intercept
    Matrix sm(s, s);
    std::vector<double> rhs(s, 0.0);
    auto column = [this, &subset, s](std::size_t i) {
        if (i + 1 == s)
            return features_;
        mtperf_assert(subset[i] < features_,
                      "Gram subset index out of range");
        return subset[i];
    };
    for (std::size_t i = 0; i < s; ++i) {
        const std::size_t ci = column(i);
        rhs[i] = xty_[ci];
        for (std::size_t j = 0; j < s; ++j) {
            const std::size_t cj = column(j);
            sm(i, j) = xtx_(std::min(ci, cj), std::max(ci, cj));
        }
    }

    std::vector<double> x;
    if (rows_ >= s) {
        // Unregularized attempt, with a relative pivot tolerance
        // standing in for the QR path's rank test.
        double max_diag = 0.0;
        for (std::size_t i = 0; i < s; ++i)
            max_diag = std::max(max_diag, sm(i, i));
        const double tol = 1e-12 * std::max(1.0, max_diag);
        if (choleskySolve(sm, rhs, x, tol))
            return x;
    }

    // Underdetermined or rank-deficient: same escalating-ridge policy
    // as solveRidge().
    for (std::size_t i = 0; i < s; ++i)
        sm(i, i) += ridge;
    double lambda = ridge;
    for (int attempt = 0; attempt < 30; ++attempt) {
        if (choleskySolve(sm, rhs, x))
            return x;
        for (std::size_t i = 0; i < s; ++i)
            sm(i, i) += lambda * 9.0;
        lambda *= 10.0;
    }
    mtperf_panic("Gram subset solve failed to converge to an SPD system");
}

} // namespace mtperf
