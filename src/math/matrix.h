/**
 * @file
 * A dense row-major matrix of doubles.
 *
 * Deliberately small: the library only needs construction, element
 * access, products, transpose and a few norms to support least-squares
 * fitting and learner internals. No expression templates, no views.
 */

#ifndef MTPERF_MATH_MATRIX_H_
#define MTPERF_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

namespace mtperf {

/** Dense row-major matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** @p rows x @p cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /**
     * Build from nested initializer data; all rows must have equal
     * width.
     */
    static Matrix fromRows(
        const std::vector<std::vector<double>> &rows);

    /** Identity matrix of size @p n. */
    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double &operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** Mutable pointer to the first element of row @p r. */
    double *rowData(std::size_t r) { return data_.data() + r * cols_; }
    const double *rowData(std::size_t r) const
    {
        return data_.data() + r * cols_;
    }

    /** Matrix product; dimensions must agree. */
    Matrix operator*(const Matrix &rhs) const;

    /** Matrix-vector product; @p v must have cols() entries. */
    std::vector<double> operator*(const std::vector<double> &v) const;

    /** Elementwise sum; dimensions must agree. */
    Matrix operator+(const Matrix &rhs) const;

    /** Elementwise difference; dimensions must agree. */
    Matrix operator-(const Matrix &rhs) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Maximum absolute element. */
    double maxAbs() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace mtperf

#endif // MTPERF_MATH_MATRIX_H_
