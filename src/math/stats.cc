#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace mtperf {

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs) {
        const double d = x - m;
        acc += d * d;
    }
    return acc / static_cast<double>(xs.size());
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

double
sampleVariance(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    return variance(xs) * static_cast<double>(xs.size()) /
           static_cast<double>(xs.size() - 1);
}

double
minValue(std::span<const double> xs)
{
    double best = std::numeric_limits<double>::infinity();
    for (double x : xs)
        best = std::min(best, x);
    return best;
}

double
maxValue(std::span<const double> xs)
{
    double best = -std::numeric_limits<double>::infinity();
    for (double x : xs)
        best = std::max(best, x);
    return best;
}

double
correlation(std::span<const double> xs, std::span<const double> ys)
{
    mtperf_assert(xs.size() == ys.size(),
                  "correlation of unequal-length spans");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
quantile(std::vector<double> xs, double q)
{
    mtperf_assert(!xs.empty(), "quantile of empty sample");
    mtperf_assert(q >= 0.0 && q <= 1.0, "quantile fraction out of range");
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(pos));
    const auto hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
rSquared(std::span<const double> actual, std::span<const double> pred)
{
    mtperf_assert(actual.size() == pred.size(),
                  "rSquared of unequal-length spans");
    if (actual.empty())
        return 0.0;
    const double m = mean(actual);
    double ss_res = 0.0, ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double r = actual[i] - pred[i];
        const double d = actual[i] - m;
        ss_res += r * r;
        ss_tot += d * d;
    }
    if (ss_tot <= 0.0)
        return ss_res <= 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto total = n_ + other.n_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.n_) /
             static_cast<double>(total);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
OnlineStats::min() const
{
    return n_ ? min_ : std::numeric_limits<double>::infinity();
}

double
OnlineStats::max() const
{
    return n_ ? max_ : -std::numeric_limits<double>::infinity();
}

} // namespace mtperf
