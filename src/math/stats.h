/**
 * @file
 * Descriptive statistics over spans of doubles.
 *
 * Used by the split search (variance / standard deviation reduction),
 * the evaluation metrics and the analysis reports.
 */

#ifndef MTPERF_MATH_STATS_H_
#define MTPERF_MATH_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace mtperf {

/** Arithmetic mean; 0 for an empty span. */
double mean(std::span<const double> xs);

/** Population variance (divides by n); 0 for n < 2. */
double variance(std::span<const double> xs);

/** Population standard deviation. */
double stddev(std::span<const double> xs);

/** Sample variance (divides by n-1); 0 for n < 2. */
double sampleVariance(std::span<const double> xs);

/** Minimum; +inf for an empty span. */
double minValue(std::span<const double> xs);

/** Maximum; -inf for an empty span. */
double maxValue(std::span<const double> xs);

/**
 * Pearson correlation coefficient of two equal-length spans.
 * Returns 0 when either side has zero variance.
 */
double correlation(std::span<const double> xs, std::span<const double> ys);

/**
 * Quantile by linear interpolation of the sorted sample,
 * @p q in [0, 1].
 */
double quantile(std::vector<double> xs, double q);

/**
 * Coefficient of determination (R^2) of predictions @p pred against
 * observations @p actual. Can be negative for models worse than the
 * mean predictor.
 */
double rSquared(std::span<const double> actual, std::span<const double> pred);

/**
 * Numerically stable one-pass accumulator (Welford) for mean and
 * variance, usable where the data is streamed (per-cycle simulator
 * statistics, online split evaluation).
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const OnlineStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const { return n_ >= 2 ? m2_ / n_ : 0.0; }
    /** Sample variance. */
    double sampleVariance() const
    {
        return n_ >= 2 ? m2_ / (n_ - 1) : 0.0;
    }
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace mtperf

#endif // MTPERF_MATH_STATS_H_
