#include "math/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace mtperf {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        mtperf_assert(rows[r].size() == m.cols_,
                      "ragged rows in Matrix::fromRows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    mtperf_assert(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    mtperf_assert(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    mtperf_assert(cols_ == rhs.rows_, "matrix product dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = data_[i * cols_ + k];
            if (a == 0.0)
                continue;
            const double *rhs_row = rhs.rowData(k);
            double *out_row = out.rowData(i);
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out_row[j] += a * rhs_row[j];
        }
    }
    return out;
}

std::vector<double>
Matrix::operator*(const std::vector<double> &v) const
{
    mtperf_assert(v.size() == cols_, "matrix-vector dimension mismatch");
    std::vector<double> out(rows_, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
        const double *row = rowData(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < cols_; ++j)
            acc += row[j] * v[j];
        out[i] = acc;
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    mtperf_assert(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix sum dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &rhs) const
{
    mtperf_assert(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                  "matrix difference dimension mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= rhs.data_[i];
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            out(j, i) = data_[i * cols_ + j];
    return out;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (double x : data_)
        acc += x * x;
    return std::sqrt(acc);
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double x : data_)
        best = std::max(best, std::abs(x));
    return best;
}

} // namespace mtperf
