#include "validate/report.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/logging.h"

namespace mtperf::validate {

namespace {

/** Top-level member naming the report schema version. */
constexpr const char *kReportVersionKey = "mtperf_validate_report";
constexpr std::uint64_t kReportVersion = 1;

/** The CRC seal's byte suffix: the bytes after it are not covered. */
constexpr const char *kCrcPrefix = ",\"crc32\":";

void
appendString(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

} // namespace

std::size_t
WorkloadValidation::failed() const
{
    std::size_t n = 0;
    for (const CounterCheck &check : counters)
        n += check.pass ? 0 : 1;
    return n;
}

std::size_t
ValidateReport::checked() const
{
    std::size_t n = 0;
    for (const WorkloadValidation &w : workloads)
        n += w.counters.size();
    return n;
}

std::size_t
ValidateReport::failed() const
{
    std::size_t n = 0;
    for (const WorkloadValidation &w : workloads)
        n += w.failed();
    return n;
}

std::string
driftReportToJson(const ValidateReport &report)
{
    std::ostringstream os;
    os << "{\"" << kReportVersionKey << "\":" << kReportVersion
       << ",\"instructions\":" << report.instructions
       << ",\"seed\":" << report.seed << ",\"workloads\":[";
    bool first_workload = true;
    for (const WorkloadValidation &w : report.workloads) {
        if (!first_workload)
            os << ',';
        first_workload = false;
        os << "{\"workload\":";
        appendString(os, w.workload);
        os << ",\"family\":";
        appendString(os, w.family);
        os << ",\"failed\":" << w.failed() << ",\"counters\":[";
        bool first_counter = true;
        for (const CounterCheck &c : w.counters) {
            if (!first_counter)
                os << ',';
            first_counter = false;
            os << "{\"counter\":";
            appendString(os, c.counter);
            os << ",\"expected\":" << json::jsonNumberText(c.expected)
               << ",\"lo\":" << json::jsonNumberText(c.lo)
               << ",\"hi\":" << json::jsonNumberText(c.hi)
               << ",\"actual\":" << c.actual << ",\"relative_error\":"
               << json::jsonNumberText(c.relativeError)
               << ",\"pass\":" << (c.pass ? "true" : "false") << '}';
        }
        os << "]}";
    }
    os << "],\"checked\":" << report.checked()
       << ",\"failed\":" << report.failed();
    std::string body = os.str();
    const std::uint32_t crc = crc32(body);
    body += kCrcPrefix;
    body += std::to_string(crc);
    body += '}';
    return body;
}

void
writeDriftReportFile(const std::string &path,
                     const ValidateReport &report)
{
    const std::string json = driftReportToJson(report);
    try {
        MTPERF_FAULT_POINT("validate.report");
        // No trailing newline: the CRC seal covers every byte before
        // the suffix, and a bare document means no truncation of the
        // file can masquerade as a complete report.
        atomicWriteFile(path,
                        [&](std::ostream &out) { out << json; });
    } catch (const std::exception &e) {
        mtperf_fatal("failed to write drift report ", path, ": ",
                     e.what());
    }
}

namespace {

[[noreturn]] void
badReport(const std::string &source, const std::string &why)
{
    mtperf_fatal("drift report ", source, ": ", why);
}

const json::JsonValue &
member(const json::JsonValue &object, const char *key,
       const std::string &source)
{
    const json::JsonValue *value = object.find(key);
    if (value == nullptr)
        badReport(source, std::string("missing member '") + key + "'");
    return *value;
}

std::uint64_t
uintMember(const json::JsonValue &object, const char *key,
           const std::string &source)
{
    const json::JsonValue &value = member(object, key, source);
    if (!value.isNumber() || !value.isUnsignedIntegral())
        badReport(source, std::string("member '") + key +
                              "' must be an unsigned integer");
    return value.unsignedIntegral();
}

double
numberMember(const json::JsonValue &object, const char *key,
             const std::string &source)
{
    const json::JsonValue &value = member(object, key, source);
    if (!value.isNumber())
        badReport(source,
                  std::string("member '") + key + "' must be a number");
    return value.number();
}

std::string
stringMember(const json::JsonValue &object, const char *key,
             const std::string &source)
{
    const json::JsonValue &value = member(object, key, source);
    if (!value.isString())
        badReport(source,
                  std::string("member '") + key + "' must be a string");
    return value.string();
}

} // namespace

ValidateReport
parseDriftReport(std::string_view text, const std::string &source)
{
    // Verify the seal on the raw bytes before trusting any structure:
    // the CRC covers everything before its own ",\"crc32\":" suffix.
    const std::size_t seal = text.rfind(kCrcPrefix);
    if (seal == std::string_view::npos)
        badReport(source, "missing crc32 seal");
    const std::string_view sealed = text.substr(0, seal);

    json::JsonValue root;
    try {
        root = json::parseJson(text, source);
    } catch (const FatalError &e) {
        badReport(source, e.what());
    }
    if (!root.isObject())
        badReport(source, "document must be an object");
    if (uintMember(root, kReportVersionKey, source) != kReportVersion)
        badReport(source, "unsupported report version");
    const std::uint64_t declared = uintMember(root, "crc32", source);
    const std::uint32_t computed = crc32(sealed);
    if (declared != computed) {
        badReport(source, "crc32 mismatch (stored " +
                              std::to_string(declared) + ", computed " +
                              std::to_string(computed) +
                              "): file is damaged");
    }

    ValidateReport report;
    report.instructions = uintMember(root, "instructions", source);
    report.seed = uintMember(root, "seed", source);
    const json::JsonValue &workloads =
        member(root, "workloads", source);
    if (!workloads.isArray())
        badReport(source, "member 'workloads' must be an array");
    for (const json::JsonValue &w : workloads.array()) {
        if (!w.isObject())
            badReport(source, "workload entries must be objects");
        WorkloadValidation validation;
        validation.workload = stringMember(w, "workload", source);
        validation.family = stringMember(w, "family", source);
        const json::JsonValue &counters = member(w, "counters", source);
        if (!counters.isArray())
            badReport(source, "member 'counters' must be an array");
        for (const json::JsonValue &c : counters.array()) {
            if (!c.isObject())
                badReport(source, "counter entries must be objects");
            CounterCheck check;
            check.counter = stringMember(c, "counter", source);
            check.expected = numberMember(c, "expected", source);
            check.lo = numberMember(c, "lo", source);
            check.hi = numberMember(c, "hi", source);
            check.actual = uintMember(c, "actual", source);
            check.relativeError =
                numberMember(c, "relative_error", source);
            const json::JsonValue &pass = member(c, "pass", source);
            if (!pass.isBool())
                badReport(source, "member 'pass' must be a boolean");
            check.pass = pass.boolean();
            validation.counters.push_back(std::move(check));
        }
        if (uintMember(w, "failed", source) != validation.failed())
            badReport(source, "workload 'failed' count disagrees with "
                              "its counter entries");
        report.workloads.push_back(std::move(validation));
    }
    if (uintMember(root, "checked", source) != report.checked())
        badReport(source,
                  "'checked' disagrees with the counter entries");
    if (uintMember(root, "failed", source) != report.failed())
        badReport(source,
                  "'failed' disagrees with the counter entries");
    return report;
}

ValidateReport
readDriftReportFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        mtperf_fatal("cannot open drift report ", path);
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        mtperf_fatal("failed to read drift report ", path);
    return parseDriftReport(text.str(), path);
}

} // namespace mtperf::validate
