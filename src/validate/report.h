/**
 * @file
 * Structured drift reports for counter validation.
 *
 * A validation run produces one report: per workload, per counter,
 * the analytic expectation, the inclusive bounds, the measured value
 * and the relative error. The JSON serialization is canonical (same
 * run, same bytes, no timestamps) and ends with a CRC32 over every
 * preceding byte, so the reader rejects any truncation or bit flip —
 * the same integrity contract the model and checkpoint formats carry.
 *
 * Writes go through common/atomic_file behind the `validate.report`
 * fault site: a torn write either never surfaces (the temp file is
 * abandoned) or is rejected on read, and an injected failure
 * propagates as FatalError naming the path (CLI exit 3).
 */

#ifndef MTPERF_VALIDATE_REPORT_H_
#define MTPERF_VALIDATE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mtperf::validate {

/** One counter checked against its oracle bound. */
struct CounterCheck
{
    std::string counter;
    double expected = 0;
    double lo = 0;
    double hi = 0;
    std::uint64_t actual = 0;
    double relativeError = 0; //!< (actual - expected) / max(|expected|, 1)
    bool pass = false;
};

/** All counters of one oracle workload. */
struct WorkloadValidation
{
    std::string workload;
    std::string family;
    std::vector<CounterCheck> counters;

    std::size_t failed() const;
};

/** A full validation run. */
struct ValidateReport
{
    std::uint64_t instructions = 0;
    std::uint64_t seed = 0;
    std::vector<WorkloadValidation> workloads;

    std::size_t checked() const;
    std::size_t failed() const;
    bool passed() const { return failed() == 0; }
};

/** Canonical CRC-sealed JSON text (no trailing newline). */
std::string driftReportToJson(const ValidateReport &report);

/**
 * Atomically write @p report to @p path (fault site validate.report).
 * @throw FatalError naming the path on any failure.
 */
void writeDriftReportFile(const std::string &path,
                          const ValidateReport &report);

/**
 * Parse @p text as a drift report, verifying the CRC seal and the
 * full schema. @p source names the input in errors.
 * @throw FatalError on any damage or schema violation.
 */
ValidateReport parseDriftReport(std::string_view text,
                                const std::string &source);

/** Load a drift report file. @throw FatalError on any damage. */
ValidateReport readDriftReportFile(const std::string &path);

} // namespace mtperf::validate

#endif // MTPERF_VALIDATE_REPORT_H_
