/**
 * @file
 * The counter-validation harness behind `mtperf validate`.
 *
 * Runs every oracle workload (specs/oracle/ on disk, or the compiled
 * builtinOracleSuite() fallback — resolution mirrors the workload
 * registry: MTPERF_ORACLE_DIR in the environment wins, "builtin"
 * forces the compiled table), simulates it on one Core per workload,
 * and asserts all kNumEventCounters fields against the analytic
 * bounds from validate/oracle.h. Workloads run via parallelFor with
 * index-addressed results, so the outcome is identical at any
 * --threads value.
 *
 * Observability: every comparison bumps validate.counters_checked and
 * one of validate.counters_passed / validate.counters_failed; an obs
 * invariant pins checked == passed + failed.
 */

#ifndef MTPERF_VALIDATE_HARNESS_H_
#define MTPERF_VALIDATE_HARNESS_H_

#include <cstdint>
#include <string>

#include "uarch/core.h"
#include "validate/report.h"

namespace mtperf::validate {

/** Knobs for one validation run. */
struct ValidateOptions
{
    /** Instructions simulated per oracle workload. */
    std::uint64_t instructions = 200000;

    /** Stream seed (bounds are sound for any seed). */
    std::uint64_t seed = 42;

    /**
     * Directory of oracle workload specs; empty resolves like the
     * workload registry (MTPERF_ORACLE_DIR env, then the source
     * tree's specs/oracle/, then the compiled-in suite).
     */
    std::string oracleDir;

    /**
     * Test hook: double the named measured counter after simulation,
     * rehearsing a systematic accounting bug (one extra increment per
     * real event). Empty disables.
     * @see counterByName for valid names.
     */
    std::string injectCounterBug;

    /** Machine geometry the bounds are derived from. */
    uarch::CoreConfig coreConfig = uarch::CoreConfig::core2Like();
};

/**
 * Validate every oracle workload.
 * @throw UsageError for an unknown injectCounterBug name or an
 * unanalyzable spec; FatalError for unloadable spec directories.
 */
ValidateReport runValidation(const ValidateOptions &options);

} // namespace mtperf::validate

#endif // MTPERF_VALIDATE_HARNESS_H_
