/**
 * @file
 * Analytic counter oracles for directed microbenchmark workloads.
 *
 * The paper's method trains on the 20 Table-I event counters, so a
 * silent accounting bug poisons every downstream model. Following the
 * CounterPoint / event-validation approach (PAPERS.md), this module
 * derives *expected* counts — with explicit ±tolerance bounds — for a
 * small family of degenerate workloads whose behaviour is analyzable
 * in closed form from the PhaseParams and the machine geometry alone:
 *
 *   chase          every op a pointer-chase load over a working set
 *                  far larger than every cache and TLB, so the miss
 *                  ratios collapse to capacity ratios;
 *   lcp            every op an ALU op with a length-changing prefix,
 *                  so lcpStalls == instRetired exactly;
 *   branch_ladder  every op an always-taken branch, so brRetired == N
 *                  and (tables initialize weakly-taken) exactly zero
 *                  mispredicts;
 *   branch_noise   every op a coin-flip branch, so brMispredicted is
 *                  Binomial(N, 1/2) regardless of predictor quality;
 *   stride         every op a sequential 1-line-stride load, so the
 *                  L1D misses every line, the L2 (next-line prefetch,
 *                  degree d) demand-misses exactly every d+1-th line,
 *                  and the DTLB misses once per page;
 *   chase_pair     two co-run pointer chases whose working sets each
 *                  fit the shared L2 alone but overflow it together,
 *                  so the interference counters (l2SharedMisses and
 *                  friends) must land inside the proportional-
 *                  occupancy bounds of DESIGN.md §14 — and must be
 *                  exactly zero in every solo family.
 *
 * Each bound states which geometry it read (DESIGN.md §13 has the
 * full derivations). Bounds are sound for any instruction count and
 * any thread count — a counter outside its bound is an accounting
 * regression, not noise.
 */

#ifndef MTPERF_VALIDATE_ORACLE_H_
#define MTPERF_VALIDATE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/core.h"
#include "workload/phase.h"

namespace mtperf::validate {

/** The analyzable workload shapes. */
enum class OracleFamily {
    Chase,
    Lcp,
    BranchLadder,
    BranchNoise,
    Stride,
    ChasePair, //!< never classified; only chasePairBounds() bounds it
};

/** Stable name of a family ("chase", "lcp", ...). */
const char *familyName(OracleFamily family);

/** Closed-form expectation for one EventCounters field. */
struct CounterBound
{
    std::string counter; //!< EventCounters field name
    double expected = 0; //!< analytic point estimate
    double lo = 0;       //!< inclusive lower bound
    double hi = 0;       //!< inclusive upper bound
};

/**
 * Classify @p spec as one of the oracle families.
 * @throw UsageError naming the offending field when the spec is not
 * degenerate enough to analyze (oracle bounds would be unsound).
 */
OracleFamily classifyOracleSpec(const workload::WorkloadSpec &spec);

/**
 * Expected-count bounds for all kNumEventCounters fields of a run of
 * @p instructions ops of @p spec on a machine shaped by @p config.
 * @throw UsageError when the spec is not an oracle workload or its
 * geometry violates a family precondition (e.g. a chase working set
 * small enough that capacity miss ratios stop being tight).
 */
std::vector<CounterBound> oracleBounds(const workload::WorkloadSpec &spec,
                                       const uarch::CoreConfig &config,
                                       std::uint64_t instructions);

/**
 * The built-in oracle suite: one committed-spec-equivalent workload
 * per family, in family declaration order. specs/oracle/ holds the
 * same five documents; a test pins the two byte-identical.
 */
std::vector<workload::WorkloadSpec> builtinOracleSuite();

/**
 * Fewest instructions per lane for which the chase_pair calibration
 * holds: the co-run must reach occupancy steady state, or the
 * cold-start transient dominates the contention counts. Runs shorter
 * than this skip the pair (and chasePairBounds() refuses them).
 */
inline constexpr std::uint64_t kChasePairMinInstructions = 100000;

/**
 * The built-in co-run chase pair, in core order. Each lane is a pure
 * pointer chase sized so it fits the shared L2 comfortably alone
 * (<= 3/4 of its lines) yet the two together overflow it (>= 5/4
 * combined): run solo, every contention counter is structurally
 * zero; co-run, both cores must show shared misses.
 */
std::vector<workload::WorkloadSpec> builtinChasePair();

/**
 * Expected-count bounds for all kNumEventCounters fields of @p
 * self's lane when it co-runs against @p other on the shared L2 of
 * @p config, both lanes executing @p instructions ops. The private
 * counters reuse the solo chase arguments; the L2 and interference
 * counters come from the steady-state proportional-occupancy model
 * (DESIGN.md §14) with margins calibrated to hold across seeds while
 * still rejecting a doubled — or silently zeroed — counter.
 * @throw UsageError when a lane is not a pure chase or the working
 * sets violate the fits-alone / overflows-together preconditions.
 */
std::vector<CounterBound> chasePairBounds(
    const workload::WorkloadSpec &self,
    const workload::WorkloadSpec &other,
    const uarch::CoreConfig &config, std::uint64_t instructions);

/**
 * Rewrite @p params into a valid chase-family phase, preserving the
 * fields the chase bounds do not constrain (lcpFrac, ILP shape, code
 * footprint, zipf exponents). Used by the property tests to turn
 * generator-minted phases into oracle-checkable ones.
 */
workload::PhaseParams oracleChasePhase(workload::PhaseParams params);

} // namespace mtperf::validate

#endif // MTPERF_VALIDATE_ORACLE_H_
