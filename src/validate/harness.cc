#include "validate/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "uarch/event_counters.h"
#include "validate/oracle.h"
#include "workload/spec_io.h"
#include "workload/stream_gen.h"

namespace mtperf::validate {

namespace {

namespace fs = std::filesystem;

/** Configure-time default: the source tree's specs/oracle/. */
std::string
defaultOracleDir()
{
#ifdef MTPERF_ORACLE_DIR
    return MTPERF_ORACLE_DIR;
#else
    return "";
#endif
}

/** Does @p dir exist and hold at least one *.json file? */
bool
hasSpecFiles(const std::string &dir)
{
    std::error_code ec;
    if (dir.empty() || !fs::is_directory(dir, ec))
        return false;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            return true;
    }
    return false;
}

/**
 * Resolve the oracle suite the same way the workload registry
 * resolves the main suite: an explicit directory wins, then the
 * MTPERF_ORACLE_DIR environment variable ("" or "builtin" forces the
 * compiled table), then the baked-in source-tree directory when it
 * actually holds specs, then the compiled suite.
 */
std::vector<workload::WorkloadSpec>
resolveOracleSuite(const std::string &explicit_dir)
{
    if (!explicit_dir.empty())
        return workload::loadWorkloadSpecDir(explicit_dir);
    if (const char *env = std::getenv("MTPERF_ORACLE_DIR")) {
        const std::string dir(env);
        if (dir.empty() || dir == "builtin")
            return builtinOracleSuite();
        return workload::loadWorkloadSpecDir(dir);
    }
    const std::string dir = defaultOracleDir();
    if (hasSpecFiles(dir))
        return workload::loadWorkloadSpecDir(dir);
    return builtinOracleSuite();
}

void
registerValidateInvariant()
{
    static const bool once = [] {
        obs::registerInvariant("validate.counter_accounting", [] {
            const std::uint64_t checked =
                obs::counter("validate.counters_checked").value();
            const std::uint64_t passed =
                obs::counter("validate.counters_passed").value();
            const std::uint64_t failed =
                obs::counter("validate.counters_failed").value();
            if (passed + failed == checked)
                return std::string();
            std::ostringstream os;
            os << "validate.counters_passed=" << passed
               << " + validate.counters_failed=" << failed
               << " != validate.counters_checked=" << checked;
            return os.str();
        });
        return true;
    }();
    (void)once;
}

/** Simulate @p spec and check it; pure in (spec, options). */
WorkloadValidation
validateWorkload(const workload::WorkloadSpec &spec,
                 const ValidateOptions &options)
{
    const OracleFamily family = classifyOracleSpec(spec);
    const std::vector<CounterBound> bounds =
        oracleBounds(spec, options.coreConfig, options.instructions);

    uarch::Core core(options.coreConfig);
    workload::StreamGenerator gen(spec.phases.front().params,
                                  options.seed);
    for (std::uint64_t i = 0; i < options.instructions; ++i)
        core.execute(gen.next());

    uarch::EventCounters measured = core.counters();
    if (!options.injectCounterBug.empty()) {
        std::uint64_t uarch::EventCounters::*member =
            uarch::counterByName(options.injectCounterBug);
        mtperf_assert(member != nullptr,
                      "inject-counter-bug name validated earlier");
        measured.*member *= 2;
    }

    WorkloadValidation validation;
    validation.workload = spec.name;
    validation.family = familyName(family);
    const auto &fields = uarch::counterFields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const CounterBound &bound = bounds[i];
        mtperf_assert(bound.counter == fields[i].name,
                      "oracle bounds out of counter order");
        CounterCheck check;
        check.counter = bound.counter;
        check.expected = bound.expected;
        check.lo = bound.lo;
        check.hi = bound.hi;
        check.actual = measured.*(fields[i].member);
        const double actual = static_cast<double>(check.actual);
        check.relativeError =
            (actual - bound.expected) /
            std::max(std::abs(bound.expected), 1.0);
        check.pass = actual >= bound.lo && actual <= bound.hi;
        validation.counters.push_back(std::move(check));
    }
    return validation;
}

} // namespace

ValidateReport
runValidation(const ValidateOptions &options)
{
    registerValidateInvariant();
    if (!options.injectCounterBug.empty() &&
        uarch::counterByName(options.injectCounterBug) == nullptr) {
        throw UsageError("--inject-counter-bug: no counter named '" +
                         options.injectCounterBug + "'");
    }
    const std::vector<workload::WorkloadSpec> suite =
        resolveOracleSuite(options.oracleDir);
    if (suite.empty())
        mtperf_fatal("oracle suite is empty");
    // Classify (and thereby reject unanalyzable specs) up front so a
    // bad directory fails before any simulation runs.
    for (const workload::WorkloadSpec &spec : suite)
        (void)classifyOracleSpec(spec);

    ValidateReport report;
    report.instructions = options.instructions;
    report.seed = options.seed;

    obs::ScopedSpan span("validate", "validate.run");
    report.workloads =
        parallelMap(globalPool(), suite.size(), [&](std::size_t i) {
            return validateWorkload(suite[i], options);
        });

    std::uint64_t passed = 0;
    std::uint64_t failed = 0;
    for (const WorkloadValidation &w : report.workloads)
        for (const CounterCheck &c : w.counters)
            (c.pass ? passed : failed) += 1;
    obs::counter("validate.counters_checked").add(passed + failed);
    obs::counter("validate.counters_passed").add(passed);
    obs::counter("validate.counters_failed").add(failed);
    return report;
}

} // namespace mtperf::validate
