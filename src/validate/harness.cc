#include "validate/harness.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "multicore/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "uarch/event_counters.h"
#include "validate/oracle.h"
#include "workload/spec_io.h"
#include "workload/stream_gen.h"

namespace mtperf::validate {

namespace {

namespace fs = std::filesystem;

/** Configure-time default: the source tree's specs/oracle/. */
std::string
defaultOracleDir()
{
#ifdef MTPERF_ORACLE_DIR
    return MTPERF_ORACLE_DIR;
#else
    return "";
#endif
}

/** Does @p dir exist and hold at least one *.json file? */
bool
hasSpecFiles(const std::string &dir)
{
    std::error_code ec;
    if (dir.empty() || !fs::is_directory(dir, ec))
        return false;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            return true;
    }
    return false;
}

/**
 * Resolve the oracle suite the same way the workload registry
 * resolves the main suite: an explicit directory wins, then the
 * MTPERF_ORACLE_DIR environment variable ("" or "builtin" forces the
 * compiled table), then the baked-in source-tree directory when it
 * actually holds specs, then the compiled suite.
 */
std::vector<workload::WorkloadSpec>
resolveOracleSuite(const std::string &explicit_dir)
{
    if (!explicit_dir.empty())
        return workload::loadWorkloadSpecDir(explicit_dir);
    if (const char *env = std::getenv("MTPERF_ORACLE_DIR")) {
        const std::string dir(env);
        if (dir.empty() || dir == "builtin")
            return builtinOracleSuite();
        return workload::loadWorkloadSpecDir(dir);
    }
    const std::string dir = defaultOracleDir();
    if (hasSpecFiles(dir))
        return workload::loadWorkloadSpecDir(dir);
    return builtinOracleSuite();
}

void
registerValidateInvariant()
{
    static const bool once = [] {
        obs::registerInvariant("validate.counter_accounting", [] {
            const std::uint64_t checked =
                obs::counter("validate.counters_checked").value();
            const std::uint64_t passed =
                obs::counter("validate.counters_passed").value();
            const std::uint64_t failed =
                obs::counter("validate.counters_failed").value();
            if (passed + failed == checked)
                return std::string();
            std::ostringstream os;
            os << "validate.counters_passed=" << passed
               << " + validate.counters_failed=" << failed
               << " != validate.counters_checked=" << checked;
            return os.str();
        });
        return true;
    }();
    (void)once;
}

/** The --inject-counter-bug rehearsal hook (validated up front). */
void
applyInjectedBug(uarch::EventCounters &measured,
                 const ValidateOptions &options)
{
    if (options.injectCounterBug.empty())
        return;
    std::uint64_t uarch::EventCounters::*member =
        uarch::counterByName(options.injectCounterBug);
    mtperf_assert(member != nullptr,
                  "inject-counter-bug name validated earlier");
    measured.*member *= 2;
}

/** Check @p measured against per-counter @p bounds, in field order. */
WorkloadValidation
checkAgainstBounds(const std::string &workload, OracleFamily family,
                   const uarch::EventCounters &measured,
                   const std::vector<CounterBound> &bounds)
{
    WorkloadValidation validation;
    validation.workload = workload;
    validation.family = familyName(family);
    const auto &fields = uarch::counterFields();
    for (std::size_t i = 0; i < fields.size(); ++i) {
        const CounterBound &bound = bounds[i];
        mtperf_assert(bound.counter == fields[i].name,
                      "oracle bounds out of counter order");
        CounterCheck check;
        check.counter = bound.counter;
        check.expected = bound.expected;
        check.lo = bound.lo;
        check.hi = bound.hi;
        check.actual = measured.*(fields[i].member);
        const double actual = static_cast<double>(check.actual);
        check.relativeError =
            (actual - bound.expected) /
            std::max(std::abs(bound.expected), 1.0);
        check.pass = actual >= bound.lo && actual <= bound.hi;
        validation.counters.push_back(std::move(check));
    }
    return validation;
}

/** Simulate @p spec and check it; pure in (spec, options). */
WorkloadValidation
validateWorkload(const workload::WorkloadSpec &spec,
                 const ValidateOptions &options)
{
    const OracleFamily family = classifyOracleSpec(spec);
    const std::vector<CounterBound> bounds =
        oracleBounds(spec, options.coreConfig, options.instructions);

    uarch::Core core(options.coreConfig);
    workload::StreamGenerator gen(spec.phases.front().params,
                                  options.seed);
    for (std::uint64_t i = 0; i < options.instructions; ++i)
        core.execute(gen.next());

    uarch::EventCounters measured = core.counters();
    applyInjectedBug(measured, options);
    return checkAgainstBounds(spec.name, family, measured, bounds);
}

/**
 * Co-run the built-in chase pair on a two-core shared L2 and check
 * both lanes against chasePairBounds(). The solo families pin the
 * contention counters at zero; this is the only place they must be
 * nonzero, so a shared L2 that stops attributing interference (or
 * double-counts it) fails here and nowhere else.
 */
std::vector<WorkloadValidation>
validateChasePair(const ValidateOptions &options)
{
    const std::vector<workload::WorkloadSpec> pair = builtinChasePair();
    mtperf_assert(pair.size() == 2, "chase pair has two lanes");
    const std::array<std::vector<CounterBound>, 2> bounds = {
        chasePairBounds(pair[0], pair[1], options.coreConfig,
                        options.instructions),
        chasePairBounds(pair[1], pair[0], options.coreConfig,
                        options.instructions)};

    multicore::MulticoreSystem system(options.coreConfig, 2);
    std::vector<std::optional<workload::StreamGenerator>> gens(2);
    std::array<std::uint64_t, 2> executed{};
    std::vector<bool> runnable(2, true);
    for (std::uint32_t c = 0; c < 2; ++c) {
        // The same per-core salt the co-run runner uses, so identical
        // lane specs still walk distinct deterministic streams.
        gens[c].emplace(pair[c].phases.front().params,
                        options.seed ^ (c * 0x9e3779b97f4a7c15ULL));
    }
    while (runnable[0] || runnable[1]) {
        const std::uint32_t c = system.nextCore(runnable);
        system.core(c).execute(gens[c]->next());
        if (++executed[c] == options.instructions)
            runnable[c] = false;
    }

    std::vector<WorkloadValidation> validations;
    for (std::uint32_t c = 0; c < 2; ++c) {
        uarch::EventCounters measured = system.counters(c);
        applyInjectedBug(measured, options);
        validations.push_back(
            checkAgainstBounds(pair[c].name, OracleFamily::ChasePair,
                               measured, bounds[c]));
    }
    return validations;
}

} // namespace

ValidateReport
runValidation(const ValidateOptions &options)
{
    registerValidateInvariant();
    if (!options.injectCounterBug.empty() &&
        uarch::counterByName(options.injectCounterBug) == nullptr) {
        throw UsageError("--inject-counter-bug: no counter named '" +
                         options.injectCounterBug + "'");
    }
    const std::vector<workload::WorkloadSpec> suite =
        resolveOracleSuite(options.oracleDir);
    if (suite.empty())
        mtperf_fatal("oracle suite is empty");
    // Classify (and thereby reject unanalyzable specs) up front so a
    // bad directory fails before any simulation runs.
    for (const workload::WorkloadSpec &spec : suite)
        (void)classifyOracleSpec(spec);

    ValidateReport report;
    report.instructions = options.instructions;
    report.seed = options.seed;

    obs::ScopedSpan span("validate", "validate.run");
    report.workloads =
        parallelMap(globalPool(), suite.size(), [&](std::size_t i) {
            return validateWorkload(suite[i], options);
        });

    // The co-run chase pair rides along after the solo sweep: one
    // deterministic two-core scenario, so its position in the report
    // is fixed and the whole run stays bit-identical at any --threads.
    // Short runs skip it — its bounds are calibrated for steady state.
    if (options.instructions >= kChasePairMinInstructions) {
        for (WorkloadValidation &v : validateChasePair(options))
            report.workloads.push_back(std::move(v));
    } else {
        informAs("validate", "skipping chase_pair: needs >= ",
                 kChasePairMinInstructions,
                 " instructions per lane for steady state");
    }

    std::uint64_t passed = 0;
    std::uint64_t failed = 0;
    for (const WorkloadValidation &w : report.workloads)
        for (const CounterCheck &c : w.counters)
            (c.pass ? passed : failed) += 1;
    obs::counter("validate.counters_checked").add(passed + failed);
    obs::counter("validate.counters_passed").add(passed);
    obs::counter("validate.counters_failed").add(failed);
    return report;
}

} // namespace mtperf::validate
