#include "validate/oracle.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/json.h"
#include "common/logging.h"
#include "uarch/types.h"

namespace mtperf::validate {

using uarch::kLineBytes;
using uarch::kPageBytes;
using workload::PhaseParams;
using workload::PhaseSpec;
using workload::WorkloadSpec;

namespace {

/** Instructions per code line / page (4-byte sequential encoding). */
constexpr std::uint64_t kOpsPerCodeLine = kLineBytes / 4;
constexpr std::uint64_t kOpsPerCodePage = kPageBytes / 4;

std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** [n,n] — a structurally exact count. */
CounterBound
exact(const char *counter, double n)
{
    return {counter, n, n, n};
}

/**
 * Binomial(n, p) with a 5-sigma noise margin plus a small absolute
 * floor. Degenerate p (0 or 1) gives an exact bound: the generator
 * draws each event independently, so p==0 can never fire and p==1
 * always does.
 */
CounterBound
binomial(const char *counter, std::uint64_t n, double p)
{
    const double nd = static_cast<double>(n);
    if (p <= 0.0)
        return exact(counter, 0.0);
    if (p >= 1.0)
        return exact(counter, nd);
    const double expected = nd * p;
    const double slack = 5.0 * std::sqrt(nd * p * (1.0 - p)) + 16.0;
    return {counter, expected, std::max(0.0, expected - slack),
            std::min(nd, expected + slack)};
}

/**
 * A capacity-bound miss counter: each of @p n uniform-random accesses
 * over a space of @p population units can hit only among at most
 * @p resident resident units, so misses >= n * (1 - resident /
 * population) minus sampling noise; the structural ceiling is n.
 */
CounterBound
capacityMisses(const char *counter, std::uint64_t n,
               std::uint64_t resident, std::uint64_t population)
{
    const double nd = static_cast<double>(n);
    const double p_hit = static_cast<double>(resident) /
                         static_cast<double>(population);
    const double expected = nd * (1.0 - p_hit);
    const double slack = 5.0 * std::sqrt(nd * p_hit) + 64.0;
    return {counter, expected, std::max(0.0, expected - slack), nd};
}

/**
 * I-side counts for a strictly sequential PC (no taken branches): one
 * cache/TLB access per unit transition, so the first pass touches
 * min(units, ceil(n / opsPerUnit)) distinct units, each missing once.
 * Within @p capacity the footprint maps at most @c associativity
 * units per set, so nothing is ever evicted and the count is exact;
 * beyond it LRU evicts sequentially reused units, so anywhere up to
 * every transition can miss.
 */
CounterBound
sequentialCodeMisses(const char *counter, std::uint64_t n,
                     std::uint64_t units, std::uint64_t opsPerUnit,
                     std::uint64_t capacity)
{
    const std::uint64_t touches = ceilDiv(n, opsPerUnit);
    const double first_pass =
        static_cast<double>(std::min(units, touches));
    if (units <= capacity)
        return {counter, first_pass, first_pass, first_pass};
    return {counter, first_pass, first_pass,
            static_cast<double>(touches)};
}

/**
 * I-side counts for a jumping PC (branch families): only first
 * touches can miss while the footprint fits, but the lower bound is
 * just the entry line/page because jump targets are stochastic.
 */
CounterBound
jumpingCodeMisses(const char *counter, std::uint64_t n,
                  std::uint64_t units, std::uint64_t capacity)
{
    const double nd = static_cast<double>(n);
    const double hi = units <= capacity
                          ? static_cast<double>(std::min<std::uint64_t>(
                                units, n))
                          : nd;
    return {counter, std::min(hi, static_cast<double>(units)),
            n > 0 ? 1.0 : 0.0, hi};
}

/** Code footprint geometry of @p params (StreamGenerator's view). */
struct CodeGeometry
{
    std::uint64_t lines;
    std::uint64_t pages;
};

CodeGeometry
codeGeometry(const PhaseParams &params)
{
    const std::uint64_t lines = std::max<std::uint64_t>(
        1, params.codeFootprintBytes / kLineBytes);
    // The PC wraps at codeBase + lines*kLineBytes, so the page count
    // follows the line count, not the raw byte footprint.
    return {lines, std::max<std::uint64_t>(
                       1, ceilDiv(lines * kLineBytes, kPageBytes))};
}

const PhaseParams &
singlePhase(const WorkloadSpec &spec)
{
    if (spec.phases.size() != 1) {
        throw UsageError("workload '" + spec.name +
                         "' is not an oracle workload: oracle specs "
                         "have exactly one phase, got " +
                         std::to_string(spec.phases.size()));
    }
    return spec.phases.front().params;
}

[[noreturn]] void
notOracle(const WorkloadSpec &spec, const std::string &why)
{
    throw UsageError("workload '" + spec.name +
                     "' is not an oracle workload: " + why);
}

void
requireZero(const WorkloadSpec &spec, double value, const char *field)
{
    if (value != 0.0) {
        notOracle(spec, std::string(field) + " must be 0, got " +
                            json::jsonNumberText(value));
    }
}

} // namespace

const char *
familyName(OracleFamily family)
{
    switch (family) {
      case OracleFamily::Chase: return "chase";
      case OracleFamily::Lcp: return "lcp";
      case OracleFamily::BranchLadder: return "branch_ladder";
      case OracleFamily::BranchNoise: return "branch_noise";
      case OracleFamily::Stride: return "stride";
      case OracleFamily::ChasePair: return "chase_pair";
    }
    return "unknown";
}

OracleFamily
classifyOracleSpec(const WorkloadSpec &spec)
{
    const PhaseParams &p = singlePhase(spec);
    requireZero(spec, p.storeFrac, "storeFrac");
    requireZero(spec, p.fpAddFrac, "fpAddFrac");
    requireZero(spec, p.fpMulFrac, "fpMulFrac");
    requireZero(spec, p.fpDivFrac, "fpDivFrac");
    requireZero(spec, p.intMulFrac, "intMulFrac");
    requireZero(spec, p.misalignedFrac, "misalignedFrac");
    requireZero(spec, p.storeForwardFrac, "storeForwardFrac");

    if (p.loadFrac == 1.0 && p.branchFrac == 0.0) {
        if (p.pointerChaseFrac == 1.0) {
            requireZero(spec, p.chasePageLocalFrac,
                        "chasePageLocalFrac");
            return OracleFamily::Chase;
        }
        if (p.streamFrac == 1.0) {
            requireZero(spec, p.lcpFrac, "lcpFrac");
            if (p.strideBytes != kLineBytes) {
                notOracle(spec, "stride workloads need strideBytes == " +
                                    std::to_string(kLineBytes));
            }
            return OracleFamily::Stride;
        }
        notOracle(spec, "pure-load specs must set pointerChaseFrac "
                        "or streamFrac to 1");
    }
    if (p.branchFrac == 1.0 && p.loadFrac == 0.0) {
        requireZero(spec, p.lcpFrac, "lcpFrac");
        if (p.branchEntropy == 0.0 && p.takenBias == 1.0)
            return OracleFamily::BranchLadder;
        if (p.branchEntropy == 1.0)
            return OracleFamily::BranchNoise;
        notOracle(spec, "branch specs must be all-taken "
                        "(branchEntropy 0, takenBias 1) or pure noise "
                        "(branchEntropy 1)");
    }
    if (p.loadFrac == 0.0 && p.branchFrac == 0.0) {
        if (p.lcpFrac == 1.0)
            return OracleFamily::Lcp;
        notOracle(spec, "pure-ALU specs must set lcpFrac to 1");
    }
    notOracle(spec, "instruction mix is not one of the analyzable "
                    "shapes (all-load, all-branch or all-ALU)");
}

namespace {

/** Shared zero bounds for the counters a family can never touch. */
void
zeroAll(std::vector<CounterBound> &bounds,
        std::initializer_list<const char *> names)
{
    for (const char *name : names)
        bounds.push_back(exact(name, 0.0));
}

std::vector<CounterBound>
chaseBounds(const WorkloadSpec &spec, const PhaseParams &p,
            const uarch::CoreConfig &config, std::uint64_t n)
{
    const std::uint64_t data_lines =
        std::max<std::uint64_t>(1, p.workingSetBytes / kLineBytes);
    const std::uint64_t data_pages = std::max<std::uint64_t>(
        1, data_lines * kLineBytes / kPageBytes);
    const std::uint64_t l1d_lines =
        config.l1d.sizeBytes / config.l1d.lineBytes;
    const std::uint64_t l2_lines =
        config.l2.sizeBytes / config.l2.lineBytes;
    const std::uint64_t tlb_reach =
        config.dtlbL0.entries + config.dtlbMain.entries;
    // The capacity-ratio argument needs the working set to dwarf every
    // structure the walk can hit in; 16x keeps the residual hit rate
    // under ~7% so the lower bounds stay tight.
    if (data_lines < 16 * (l1d_lines + l2_lines)) {
        notOracle(spec, "chase working set must be at least 16x the "
                        "combined L1D+L2 capacity");
    }
    if (data_pages < 16 * tlb_reach) {
        notOracle(spec, "chase working set must span at least 16x the "
                        "combined DTLB reach");
    }

    const CodeGeometry code = codeGeometry(p);
    const std::uint64_t l1i_lines =
        config.l1i.sizeBytes / config.l1i.lineBytes;

    std::vector<CounterBound> bounds;
    const double nd = static_cast<double>(n);
    // Fully serial dependent loads: one memory latency plus one page
    // walk per op, give or take the few percent of L2/TLB hits.
    bounds.push_back(
        {"cycles",
         nd * static_cast<double>(config.memLatency +
                                  config.pageWalkLatency),
         0.9 * nd * static_cast<double>(config.memLatency),
         1.05 * nd *
                 static_cast<double>(config.memLatency +
                                     config.pageWalkLatency +
                                     config.dtlbL0MissLatency +
                                     config.l1dHitLatency + 8) +
             10000.0});
    bounds.push_back(exact("instRetired", nd));
    bounds.push_back(exact("instLoads", nd));
    zeroAll(bounds, {"instStores", "brRetired", "brMispredicted"});
    bounds.push_back(
        capacityMisses("l1dLineMiss", n, l1d_lines, data_lines));
    bounds.push_back(sequentialCodeMisses("l1iMiss", n, code.lines,
                                          kOpsPerCodeLine, l1i_lines));
    bounds.push_back(capacityMisses("l2LineMiss", n,
                                    l1d_lines + l2_lines, data_lines));
    bounds.push_back(capacityMisses("dtlbL0LdMiss", n,
                                    config.dtlbL0.entries, data_pages));
    bounds.push_back(
        capacityMisses("dtlbLdMiss", n, tlb_reach, data_pages));
    bounds.push_back(
        capacityMisses("dtlbLdRetiredMiss", n, tlb_reach, data_pages));
    bounds.push_back(
        capacityMisses("dtlbAnyMiss", n, tlb_reach, data_pages));
    bounds.push_back(sequentialCodeMisses("itlbMiss", n, code.pages,
                                          kOpsPerCodePage,
                                          config.itlb.entries));
    zeroAll(bounds, {"ldBlockSta", "ldBlockStd", "ldBlockOverlapStore",
                     "misalignedMemRef", "l1dSplitLoads",
                     "l1dSplitStores"});
    bounds.push_back(binomial("lcpStalls", n, p.lcpFrac));
    return bounds;
}

std::vector<CounterBound>
lcpBounds(const PhaseParams &p, const uarch::CoreConfig &config,
          std::uint64_t n)
{
    const CodeGeometry code = codeGeometry(p);
    const std::uint64_t l1i_lines =
        config.l1i.sizeBytes / config.l1i.lineBytes;
    const CounterBound l1i = sequentialCodeMisses(
        "l1iMiss", n, code.lines, kOpsPerCodeLine, l1i_lines);
    const CounterBound itlb = sequentialCodeMisses(
        "itlbMiss", n, code.pages, kOpsPerCodePage,
        config.itlb.entries);

    std::vector<CounterBound> bounds;
    const double nd = static_cast<double>(n);
    const double bubble =
        static_cast<double>(config.decoder.lcpStallCycles);
    // Every op carries the 6-cycle pre-decode bubble, which alone
    // exceeds the machine width, so the fetch unit is the only
    // throughput limit: cycles == bubble*N plus the I-side refills.
    const double refill_hi =
        l1i.hi * static_cast<double>(config.memLatency) +
        itlb.hi * static_cast<double>(config.pageWalkLatency);
    bounds.push_back({"cycles", bubble * nd + refill_hi / 2.0,
                      bubble * nd, bubble * nd + refill_hi + 1024.0});
    bounds.push_back(exact("instRetired", nd));
    zeroAll(bounds, {"instLoads", "instStores", "brRetired",
                     "brMispredicted", "l1dLineMiss"});
    bounds.push_back(l1i);
    zeroAll(bounds, {"l2LineMiss", "dtlbL0LdMiss", "dtlbLdMiss",
                     "dtlbLdRetiredMiss", "dtlbAnyMiss"});
    bounds.push_back(itlb);
    zeroAll(bounds, {"ldBlockSta", "ldBlockStd", "ldBlockOverlapStore",
                     "misalignedMemRef", "l1dSplitLoads",
                     "l1dSplitStores"});
    bounds.push_back(exact("lcpStalls", nd));
    return bounds;
}

std::vector<CounterBound>
branchBounds(const PhaseParams &p, const uarch::CoreConfig &config,
             std::uint64_t n, bool noise)
{
    const CodeGeometry code = codeGeometry(p);
    const std::uint64_t l1i_lines =
        config.l1i.sizeBytes / config.l1i.lineBytes;
    const CounterBound l1i =
        jumpingCodeMisses("l1iMiss", n, code.lines, l1i_lines);
    const CounterBound itlb =
        jumpingCodeMisses("itlbMiss", n, code.pages,
                          config.itlb.entries);

    // All-taken ladder: every 2-bit table initializes weakly-taken and
    // only ever sees taken outcomes, so no entry can cross into the
    // not-taken half — exactly zero mispredicts. Noise: the outcome is
    // an independent fair coin drawn after the prediction, so each
    // branch mispredicts with probability exactly 1/2 no matter what
    // the predictor learned: Binomial(N, 1/2).
    const CounterBound mispredicts =
        noise ? binomial("brMispredicted", n, 0.5)
              : exact("brMispredicted", 0.0);

    std::vector<CounterBound> bounds;
    const double nd = static_cast<double>(n);
    const double width = static_cast<double>(config.width);
    const double penalty = static_cast<double>(config.mispredictPenalty);
    const double refill_hi =
        l1i.hi * static_cast<double>(config.memLatency) +
        itlb.hi * static_cast<double>(config.pageWalkLatency);
    // Correct-path branches flow at the machine width; every
    // mispredict serializes a re-steer of mispredictPenalty cycles.
    const double cycles_lo =
        std::max(std::ceil(nd / width),
                 std::max(0.0, mispredicts.lo - 1.0) * penalty);
    const double cycles_hi = nd / width +
                             mispredicts.hi * (penalty + 4.0) +
                             refill_hi + 4096.0;
    bounds.push_back({"cycles",
                      nd / width + mispredicts.expected * (penalty + 2.0),
                      cycles_lo, cycles_hi});
    bounds.push_back(exact("instRetired", nd));
    zeroAll(bounds, {"instLoads", "instStores"});
    bounds.push_back(exact("brRetired", nd));
    bounds.push_back(mispredicts);
    bounds.push_back(exact("l1dLineMiss", 0.0));
    bounds.push_back(l1i);
    zeroAll(bounds, {"l2LineMiss", "dtlbL0LdMiss", "dtlbLdMiss",
                     "dtlbLdRetiredMiss", "dtlbAnyMiss"});
    bounds.push_back(itlb);
    zeroAll(bounds, {"ldBlockSta", "ldBlockStd", "ldBlockOverlapStore",
                     "misalignedMemRef", "l1dSplitLoads",
                     "l1dSplitStores", "lcpStalls"});
    return bounds;
}

std::vector<CounterBound>
strideBounds(const WorkloadSpec &spec, const PhaseParams &p,
             const uarch::CoreConfig &config, std::uint64_t n)
{
    const std::uint64_t data_lines =
        std::max<std::uint64_t>(1, p.workingSetBytes / kLineBytes);
    const std::uint64_t l2_lines =
        config.l2.sizeBytes / config.l2.lineBytes;
    // Wrapped-around lines must be long evicted when revisited, or
    // the every-line-misses / every-(d+1)-th-line-L2-misses argument
    // breaks down.
    if (data_lines < 16 * l2_lines) {
        notOracle(spec, "stride working set must be at least 16x the "
                        "L2 capacity");
    }
    const std::uint64_t wraps = n * kLineBytes / p.workingSetBytes;

    const CodeGeometry code = codeGeometry(p);
    const std::uint64_t l1i_lines =
        config.l1i.sizeBytes / config.l1i.lineBytes;

    std::vector<CounterBound> bounds;
    const double nd = static_cast<double>(n);
    const double wrap_slack = static_cast<double>(wraps) + 2.0;

    // Next-line prefetch of degree d turns the L2 demand-miss pattern
    // into exactly one miss per d+1 sequential lines.
    const std::uint64_t degree =
        config.l2.nextLinePrefetch ? config.l2.prefetchDegree + 1 : 1;
    const double l2_expected = nd / static_cast<double>(degree);
    // One DTLB fill per page; both levels miss together because a
    // page is only ever revisited a full working-set lap later.
    const std::uint64_t pages_per_line_run = kPageBytes / kLineBytes;
    const double dtlb_expected =
        nd / static_cast<double>(pages_per_line_run);
    const auto per_page = [&](const char *counter) {
        return CounterBound{counter, dtlb_expected,
                            std::max(0.0, dtlb_expected - 2.0),
                            dtlb_expected + wrap_slack};
    };

    // The critical path runs through the reorder window recurrence
    // commit[i] >= commit[i - robSize] + latency[i] (an op cannot
    // dispatch until the op robSize before it commits) together with
    // in-order commit monotonicity. A path may therefore hop back
    // robSize ops and collect that op's full latency, or one op and
    // collect (almost) nothing — and the adversarial path chains
    // L2-miss loads. Misses recur every `degree` ops, so the cheapest
    // miss-to-miss hop spans k ops, where k is the smallest multiple
    // of `degree` that is >= robSize, and the steady-state rate is
    // memLatency / k cycles per op. The lower bound is airtight; the
    // upper bound adds the TLB-walk detours the path can also collect
    // (one per lcm(degree, opsPerPage) ops), commit-width drag on the
    // intermediate single-op hops, and a 10% + constant margin for
    // cold-start transients (the first pass misses L2 on every line
    // until the prefetcher warms).
    const double width = static_cast<double>(config.width);
    const double rob = static_cast<double>(config.robSize);
    const double k =
        std::ceil(rob / static_cast<double>(degree)) *
        static_cast<double>(degree);
    const double miss_rate = static_cast<double>(config.memLatency) / k;
    const std::uint64_t walk_period =
        std::lcm<std::uint64_t>(degree, pages_per_line_run);
    const double walk_rate =
        static_cast<double>(config.pageWalkLatency) /
        static_cast<double>(walk_period);
    const double width_rate = (k - static_cast<double>(degree)) /
                              (k * width);
    const double cycles_lo = std::max(
        std::ceil(nd / width),
        static_cast<double>(config.memLatency) *
            std::max(0.0, std::floor(nd / k) - 1.0));
    bounds.push_back(
        {"cycles", nd * (miss_rate + walk_rate), cycles_lo,
         1.10 * nd * (miss_rate + walk_rate + width_rate) + 8192.0});
    bounds.push_back(exact("instRetired", nd));
    bounds.push_back(exact("instLoads", nd));
    zeroAll(bounds, {"instStores", "brRetired", "brMispredicted"});
    // Stride == line size with no L1D prefetch: every load opens a
    // fresh line, so each one is an L1D miss.
    bounds.push_back(exact("l1dLineMiss", nd));
    bounds.push_back(sequentialCodeMisses("l1iMiss", n, code.lines,
                                          kOpsPerCodeLine, l1i_lines));
    bounds.push_back({"l2LineMiss", l2_expected,
                      std::max(0.0, std::floor(l2_expected) - 1.0),
                      std::ceil(l2_expected) + wrap_slack});
    bounds.push_back(per_page("dtlbL0LdMiss"));
    bounds.push_back(per_page("dtlbLdMiss"));
    bounds.push_back(per_page("dtlbLdRetiredMiss"));
    bounds.push_back(per_page("dtlbAnyMiss"));
    bounds.push_back(sequentialCodeMisses("itlbMiss", n, code.pages,
                                          kOpsPerCodePage,
                                          config.itlb.entries));
    zeroAll(bounds, {"ldBlockSta", "ldBlockStd", "ldBlockOverlapStore",
                     "misalignedMemRef", "l1dSplitLoads",
                     "l1dSplitStores", "lcpStalls"});
    return bounds;
}

/** Reorder @p bounds into counterFields() order and check coverage. */
std::vector<CounterBound>
inCounterOrder(std::vector<CounterBound> bounds)
{
    std::vector<CounterBound> ordered;
    ordered.reserve(uarch::kNumEventCounters);
    for (const uarch::CounterField &field : uarch::counterFields()) {
        const auto it = std::find_if(
            bounds.begin(), bounds.end(),
            [&](const CounterBound &b) {
                return b.counter == field.name;
            });
        mtperf_assert(it != bounds.end(),
                      "oracle family missing a counter bound");
        ordered.push_back(*it);
    }
    mtperf_assert(ordered.size() == bounds.size(),
                  "oracle family has duplicate counter bounds");
    return ordered;
}

} // namespace

std::vector<CounterBound>
oracleBounds(const WorkloadSpec &spec, const uarch::CoreConfig &config,
             std::uint64_t instructions)
{
    const OracleFamily family = classifyOracleSpec(spec);
    const PhaseParams &p = singlePhase(spec);
    std::vector<CounterBound> bounds;
    switch (family) {
      case OracleFamily::Chase:
        bounds = chaseBounds(spec, p, config, instructions);
        break;
      case OracleFamily::Lcp:
        bounds = lcpBounds(p, config, instructions);
        break;
      case OracleFamily::BranchLadder:
        bounds = branchBounds(p, config, instructions, false);
        break;
      case OracleFamily::BranchNoise:
        bounds = branchBounds(p, config, instructions, true);
        break;
      case OracleFamily::Stride:
        bounds = strideBounds(spec, p, config, instructions);
        break;
      case OracleFamily::ChasePair:
        // classifyOracleSpec never returns ChasePair (a lane's shape
        // is just a chase); the co-run bounds need the partner.
        notOracle(spec, "chase_pair bounds need the co-runner; "
                        "use chasePairBounds()");
    }
    // Every solo family runs through a private L2: the shared-
    // hierarchy interference counters are structurally zero, stated
    // once here so growing the counter file cannot silently leave a
    // family's bound list short.
    zeroAll(bounds, {"l2SharedMisses", "l2OccupancyEvictedByOther",
                     "prefetchCancellations"});
    return inCounterOrder(std::move(bounds));
}

namespace {

/**
 * Calibration of the proportional-occupancy model against the
 * simulator (DESIGN.md §14 records the measured fits). Measured
 * counts are affine in the instruction count: actual ~= scale x
 * model_rate x (N - N0), where N0 is a per-counter cold-start offset.
 * The contention counters ramp up late (N0 > 0: the stolen-line
 * directory starts empty and occupancies take roughly one cache fill
 * to equilibrate), while demand misses and cancellations carry a
 * cold-start *surplus* (N0 < 0: compulsory misses and the streamer
 * flailing before the lanes settle into alternation). Slopes and
 * offsets are fitted over 100k-400k instructions/lane across seeds
 * (residuals within a few percent); the two counters whose slope
 * depends on which lane is bigger (the smaller, hotter lane re-misses
 * stolen lines and gets evicted more per instruction) carry
 * larger/smaller-lane constants. The lo/hi factors hold across the
 * fitted range with >= 1.15x headroom while a doubled or zeroed
 * counter always lands outside. Valid once the co-run has reached
 * steady state (>= kChasePairMinInstructions per lane; every N0 sits
 * below that gate, so expectations stay positive).
 */
constexpr double kL2MissScale = 0.94;
constexpr double kL2MissColdStart = -62000.0;
constexpr double kSharedMissScaleLarger = 0.79;
constexpr double kSharedMissColdLarger = 63000.0;
constexpr double kSharedMissScaleSmaller = 0.94;
constexpr double kSharedMissColdSmaller = 70000.0;
constexpr double kEvictedScaleLarger = 1.31;
constexpr double kEvictedColdLarger = 42500.0;
constexpr double kEvictedScaleSmaller = 1.49;
constexpr double kEvictedColdSmaller = 18000.0;
constexpr double kPrefetchCancelScale = 1.49;
constexpr double kPrefetchCancelColdStart = -68000.0;
constexpr double kL2MissLoFactor = 0.75;
constexpr double kL2MissHiFactor = 1.30;
constexpr double kContentionLoFactor = 0.75;
constexpr double kContentionHiFactor = 1.30;

/** Steady-state solution of the two-chase occupancy balance. */
struct PairModel
{
    double mSelf = 0;  //!< self's per-L2-access demand-miss ratio
    double mOther = 0; //!< the co-runner's
    double rSelf = 0;  //!< self's resident shared-L2 lines
};

/**
 * Proportional-occupancy model (DESIGN.md §14): with both lanes
 * uniform over their own w lines and accessing at equal rates, lane
 * occupancy r splits in proportion to miss-insertion rates,
 *     r_self / L = m_self / (m_self + m_other),
 * with m_i = 1 - r_i / w_i and r_self + r_other = L (the cache runs
 * full). Solved by bisection on r_self; the balance residual is
 * monotone on the feasible interval, so the root is unique and the
 * solve is exactly reproducible.
 */
PairModel
solvePairModel(double w_self, double w_other, double lines)
{
    const double lo_r = std::max(0.0, lines - w_other);
    const double hi_r = std::min(w_self, lines);
    double lo = lo_r;
    double hi = hi_r;
    for (int i = 0; i < 200; ++i) {
        const double r = 0.5 * (lo + hi);
        const double m_self = 1.0 - r / w_self;
        const double m_other = 1.0 - (lines - r) / w_other;
        // residual > 0 when r is below its balance share.
        const double residual = lines * m_self - r * (m_self + m_other);
        if (residual > 0.0)
            lo = r;
        else
            hi = r;
    }
    PairModel model;
    model.rSelf = 0.5 * (lo + hi);
    model.mSelf = 1.0 - model.rSelf / w_self;
    model.mOther = 1.0 - (lines - model.rSelf) / w_other;
    return model;
}

/** A model-centred bound: [lo_f, hi_f] x expected. */
CounterBound
modeled(const char *counter, double expected, double lo_f, double hi_f)
{
    return {counter, expected, lo_f * expected, hi_f * expected};
}

} // namespace

std::vector<CounterBound>
chasePairBounds(const WorkloadSpec &self, const WorkloadSpec &other,
                const uarch::CoreConfig &config,
                std::uint64_t instructions)
{
    if (classifyOracleSpec(self) != OracleFamily::Chase)
        notOracle(self, "chase_pair lanes must be pure pointer chases");
    if (classifyOracleSpec(other) != OracleFamily::Chase)
        notOracle(other, "chase_pair lanes must be pure pointer chases");
    const PhaseParams &p_self = singlePhase(self);
    const PhaseParams &p_other = singlePhase(other);

    const std::uint64_t l2_lines =
        config.l2.sizeBytes / config.l2.lineBytes;
    const std::uint64_t self_lines = std::max<std::uint64_t>(
        1, p_self.workingSetBytes / kLineBytes);
    const std::uint64_t other_lines = std::max<std::uint64_t>(
        1, p_other.workingSetBytes / kLineBytes);
    // Fits-alone: each lane must leave the solo case contention-free
    // (<= 3/4 of the shared L2). Overflows-together: the union must
    // actually thrash (>= 5/4 of it), or the occupancy model's
    // "cache runs full" premise is false and the bounds are unsound.
    if (4 * self_lines > 3 * l2_lines)
        notOracle(self, "chase_pair working set must fit 3/4 of the "
                        "shared L2");
    if (4 * other_lines > 3 * l2_lines)
        notOracle(other, "chase_pair working set must fit 3/4 of the "
                         "shared L2");
    if (4 * (self_lines + other_lines) < 5 * l2_lines) {
        notOracle(self, "chase_pair working sets must overflow the "
                        "shared L2 by >= 5/4 combined");
    }
    if (instructions < kChasePairMinInstructions) {
        notOracle(self, "chase_pair bounds are calibrated for steady "
                        "state; need >= " +
                            std::to_string(kChasePairMinInstructions) +
                            " instructions per lane");
    }

    const std::uint64_t l1d_lines =
        config.l1d.sizeBytes / config.l1d.lineBytes;
    const std::uint64_t self_pages = std::max<std::uint64_t>(
        1, self_lines * kLineBytes / kPageBytes);
    const std::uint64_t tlb_reach =
        config.dtlbL0.entries + config.dtlbMain.entries;
    const CodeGeometry code = codeGeometry(p_self);
    const std::uint64_t l1i_lines =
        config.l1i.sizeBytes / config.l1i.lineBytes;

    const PairModel model = solvePairModel(
        static_cast<double>(self_lines),
        static_cast<double>(other_lines),
        static_cast<double>(l2_lines));

    const double nd = static_cast<double>(instructions);
    // L2 demand accesses: loads that slip past the private L1D. The
    // co-runner's rate matters because its fills are what evict us.
    const double acc_self =
        nd * (1.0 - static_cast<double>(l1d_lines) /
                        static_cast<double>(self_lines));
    const double acc_other =
        nd * (1.0 - static_cast<double>(l1d_lines) /
                        static_cast<double>(other_lines));
    const double miss_self = acc_self * model.mSelf;
    const double miss_other = acc_other * model.mOther;

    // Interference expectations: a re-miss is "shared" when the
    // evictor was the other core, an eviction is "by other" at the
    // co-runner's fill rate times our occupancy share, and the
    // streamer flips owners roughly every other miss, charging each
    // lane a quarter of the combined miss stream. Each clean rate is
    // then calibrated as scale x rate x (N - N0) — see the constants
    // block above for the affine cold-start model and DESIGN.md §14
    // for the measured fits.
    const bool self_larger = self_lines >= other_lines;
    const auto ramp = [nd](double cold) { return (nd - cold) / nd; };
    const double other_share =
        model.mOther / (model.mSelf + model.mOther);
    const double e_shared =
        (self_larger ? kSharedMissScaleLarger : kSharedMissScaleSmaller) *
        miss_self * other_share *
        ramp(self_larger ? kSharedMissColdLarger : kSharedMissColdSmaller);
    const double e_evicted =
        (self_larger ? kEvictedScaleLarger : kEvictedScaleSmaller) *
        acc_other * model.mOther *
        (model.rSelf / static_cast<double>(l2_lines)) *
        ramp(self_larger ? kEvictedColdLarger : kEvictedColdSmaller);
    const double e_cancel = kPrefetchCancelScale * 0.25 *
                            (miss_self + miss_other) *
                            ramp(kPrefetchCancelColdStart);

    std::vector<CounterBound> bounds;
    // Serial dependent loads again, but the latency mix now floats
    // with the contested hit ratio, so only structural extremes are
    // safe: every op costs at least an L1D hit, at most a memory
    // access plus a full page walk plus the worst queue delay.
    bounds.push_back(
        {"cycles",
         nd * (static_cast<double>(config.l2HitLatency) *
                   (1.0 - model.mSelf) +
               static_cast<double>(config.memLatency) * model.mSelf),
         nd * static_cast<double>(config.l1dHitLatency),
         1.3 * nd *
                 static_cast<double>(config.memLatency +
                                     config.pageWalkLatency +
                                     config.dtlbL0MissLatency +
                                     config.l1dHitLatency + 16) +
             10000.0});
    bounds.push_back(exact("instRetired", nd));
    bounds.push_back(exact("instLoads", nd));
    zeroAll(bounds, {"instStores", "brRetired", "brMispredicted"});
    bounds.push_back(
        capacityMisses("l1dLineMiss", instructions, l1d_lines,
                       self_lines));
    bounds.push_back(sequentialCodeMisses("l1iMiss", instructions,
                                          code.lines, kOpsPerCodeLine,
                                          l1i_lines));
    bounds.push_back(modeled("l2LineMiss",
                             kL2MissScale * miss_self *
                                 ramp(kL2MissColdStart),
                             kL2MissLoFactor, kL2MissHiFactor));
    bounds.push_back(capacityMisses("dtlbL0LdMiss", instructions,
                                    config.dtlbL0.entries, self_pages));
    bounds.push_back(capacityMisses("dtlbLdMiss", instructions,
                                    tlb_reach, self_pages));
    bounds.push_back(capacityMisses("dtlbLdRetiredMiss", instructions,
                                    tlb_reach, self_pages));
    bounds.push_back(capacityMisses("dtlbAnyMiss", instructions,
                                    tlb_reach, self_pages));
    bounds.push_back(sequentialCodeMisses("itlbMiss", instructions,
                                          code.pages, kOpsPerCodePage,
                                          config.itlb.entries));
    zeroAll(bounds, {"ldBlockSta", "ldBlockStd", "ldBlockOverlapStore",
                     "misalignedMemRef", "l1dSplitLoads",
                     "l1dSplitStores"});
    bounds.push_back(
        binomial("lcpStalls", instructions, p_self.lcpFrac));
    bounds.push_back(modeled("l2SharedMisses", e_shared,
                             kContentionLoFactor, kContentionHiFactor));
    bounds.push_back(modeled("l2OccupancyEvictedByOther", e_evicted,
                             kContentionLoFactor, kContentionHiFactor));
    bounds.push_back(modeled("prefetchCancellations", e_cancel,
                             kContentionLoFactor, kContentionHiFactor));
    return inCounterOrder(std::move(bounds));
}

workload::PhaseParams
oracleChasePhase(workload::PhaseParams params)
{
    params.loadFrac = 1.0;
    params.storeFrac = 0.0;
    params.branchFrac = 0.0;
    params.fpAddFrac = 0.0;
    params.fpMulFrac = 0.0;
    params.fpDivFrac = 0.0;
    params.intMulFrac = 0.0;
    params.pointerChaseFrac = 1.0;
    params.chasePageLocalFrac = 0.0;
    params.streamFrac = 0.0;
    params.misalignedFrac = 0.0;
    params.storeForwardFrac = 0.0;
    params.storeAddrSlowFrac = 0.0;
    // Keep the generated working set's variety but push it into the
    // region where the capacity-ratio bounds are sound (and keep it
    // page-aligned so line and page counts stay exact).
    constexpr std::uint64_t kFloor = 128ULL * 1024 * 1024;
    params.workingSetBytes =
        kFloor + params.workingSetBytes % kFloor / kPageBytes *
                     kPageBytes;
    return params;
}

namespace {

PhaseParams
oracleBasePhase(const char *name)
{
    PhaseParams p;
    p.name = name;
    p.loadFrac = 0.0;
    p.storeFrac = 0.0;
    p.branchFrac = 0.0;
    p.fpAddFrac = 0.0;
    p.fpMulFrac = 0.0;
    p.fpDivFrac = 0.0;
    p.intMulFrac = 0.0;
    p.workingSetBytes = 64 * 1024;
    p.hotFrac = 0.0;
    p.hotBytes = 16 * 1024;
    p.pointerChaseFrac = 0.0;
    p.chasePageLocalFrac = 0.0;
    p.streamFrac = 0.0;
    p.strideBytes = kLineBytes;
    p.zipfS = 0.9;
    p.branchEntropy = 0.0;
    p.takenBias = 0.5;
    p.codeFootprintBytes = 16 * 1024;
    p.codeZipfS = 1.1;
    p.farJumpFrac = 0.0;
    p.depGeoP = 0.25;
    p.depNoneFrac = 1.0;
    p.lcpFrac = 0.0;
    p.misalignedFrac = 0.0;
    p.storeForwardFrac = 0.0;
    p.storeForwardPartialFrac = 0.0;
    p.storeAddrSlowFrac = 0.0;
    return p;
}

WorkloadSpec
oneOracle(const char *name, PhaseParams params)
{
    WorkloadSpec spec;
    spec.name = name;
    spec.phases.push_back(PhaseSpec{std::move(params), 1});
    return spec;
}

} // namespace

std::vector<WorkloadSpec>
builtinOracleSuite()
{
    std::vector<WorkloadSpec> suite;

    PhaseParams chase = oracleBasePhase("chase");
    chase.loadFrac = 1.0;
    chase.pointerChaseFrac = 1.0;
    chase.workingSetBytes = 256ULL * 1024 * 1024;
    suite.push_back(oneOracle("oracle_chase", chase));

    PhaseParams lcp = oracleBasePhase("lcp");
    lcp.lcpFrac = 1.0;
    suite.push_back(oneOracle("oracle_lcp", lcp));

    PhaseParams ladder = oracleBasePhase("ladder");
    ladder.branchFrac = 1.0;
    ladder.takenBias = 1.0;
    ladder.farJumpFrac = 0.15;
    suite.push_back(oneOracle("oracle_branch_ladder", ladder));

    PhaseParams noise = oracleBasePhase("noise");
    noise.branchFrac = 1.0;
    noise.branchEntropy = 1.0;
    noise.farJumpFrac = 0.15;
    suite.push_back(oneOracle("oracle_branch_noise", noise));

    PhaseParams stride = oracleBasePhase("stride");
    stride.loadFrac = 1.0;
    stride.streamFrac = 1.0;
    stride.workingSetBytes = 64ULL * 1024 * 1024;
    suite.push_back(oneOracle("oracle_stride", stride));

    return suite;
}

std::vector<WorkloadSpec>
builtinChasePair()
{
    // 3 MiB + 2.5 MiB over a 4 MiB shared L2: each lane is exactly at
    // or under the 3/4 fits-alone ceiling, and together they overflow
    // it at 5.5/4 — comfortably past the >= 5/4 precondition.
    PhaseParams a = oracleBasePhase("chase");
    a.loadFrac = 1.0;
    a.pointerChaseFrac = 1.0;
    a.workingSetBytes = 3ULL * 1024 * 1024;

    PhaseParams b = a;
    b.workingSetBytes = 2560ULL * 1024;

    std::vector<WorkloadSpec> pair;
    pair.push_back(oneOracle("oracle_chase_pair_a", std::move(a)));
    pair.push_back(oneOracle("oracle_chase_pair_b", std::move(b)));
    return pair;
}

} // namespace mtperf::validate
