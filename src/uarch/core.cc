#include "uarch/core.h"

#include <algorithm>

#include "common/logging.h"

namespace mtperf::uarch {

CpiStack
CpiStack::delta(const CpiStack &earlier) const
{
    CpiStack d;
    d.base = base - earlier.base;
    d.frontend = frontend - earlier.frontend;
    d.resteer = resteer - earlier.resteer;
    d.memL2 = memL2 - earlier.memL2;
    d.memL1d = memL1d - earlier.memL1d;
    d.dtlb = dtlb - earlier.dtlb;
    d.storeForward = storeForward - earlier.storeForward;
    d.memOther = memOther - earlier.memOther;
    d.longLatency = longLatency - earlier.longLatency;
    d.window = window - earlier.window;
    return d;
}

Core::Core(const CoreConfig &config, L2Port *shared_l2,
           std::uint32_t core_id)
    : config_(config),
      sharedL2_(shared_l2),
      coreId_(core_id),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      dtlb_(config.dtlbL0, config.dtlbMain),
      itlb_(config.itlb),
      bp_(config.branchPredictor),
      decoder_(config.decoder),
      lsq_(config.lsq)
{
    if (config_.width == 0)
        mtperf_fatal("core width must be at least 1");
    if (config_.robSize == 0)
        mtperf_fatal("ROB must have at least one entry");
    robCommit_.assign(config_.robSize, 0);
    if (config_.modelPortContention) {
        if (config_.aluPorts == 0 || config_.loadPorts == 0 ||
            config_.storePorts == 0 || config_.fpAddPorts == 0 ||
            config_.fpMulPorts == 0) {
            mtperf_fatal("port contention model needs at least one "
                         "port per class");
        }
        // Flat layout: [alu | load | store | fpAdd | fpMul].
        std::uint32_t offset = 0;
        auto group = [&offset](std::uint32_t count, Cycle occupancy) {
            const PortGroup g{offset, count, occupancy};
            offset += count;
            return g;
        };
        const PortGroup alu = group(config_.aluPorts, 1);
        const PortGroup load = group(config_.loadPorts, 1);
        const PortGroup store = group(config_.storePorts, 1);
        const PortGroup fp_add = group(config_.fpAddPorts, 1);
        const PortGroup fp_mul = group(config_.fpMulPorts, 1);
        // The divider shares the FP multiply port and is unpipelined.
        PortGroup fp_div = fp_mul;
        fp_div.occupancy = config_.fpDivLatency;

        portGroups_[static_cast<std::size_t>(OpClass::IntAlu)] = alu;
        portGroups_[static_cast<std::size_t>(OpClass::IntMul)] = alu;
        portGroups_[static_cast<std::size_t>(OpClass::Branch)] = alu;
        portGroups_[static_cast<std::size_t>(OpClass::Load)] = load;
        portGroups_[static_cast<std::size_t>(OpClass::Store)] = store;
        portGroups_[static_cast<std::size_t>(OpClass::FpAdd)] = fp_add;
        portGroups_[static_cast<std::size_t>(OpClass::FpMul)] = fp_mul;
        portGroups_[static_cast<std::size_t>(OpClass::FpDiv)] = fp_div;
        portFree_.assign(offset, 0);
    }
}

Cycle
Core::acquirePort(OpClass cls, Cycle dispatch, Cycle ready)
{
    if (!config_.modelPortContention)
        return ready;

    const PortGroup &group = portGroups_[static_cast<std::size_t>(cls)];
    Cycle *ports = portFree_.data() + group.offset;

    // Pick the earliest-free port (ties to the lowest index). The slot
    // is reserved from dispatch onward (an out-of-order scheduler
    // gives ready ops priority, so a data-stalled op must not push the
    // port into the future for the independent ops behind it); the op
    // then issues when both its slot and its inputs are ready.
    std::size_t best = 0;
    for (std::size_t i = 1; i < group.count; ++i) {
        if (ports[i] < ports[best])
            best = i;
    }
    const Cycle slot = std::max(dispatch, ports[best]);
    ports[best] = slot + group.occupancy;
    return std::max(ready, slot);
}

L2AccessResult
Core::l2Access(Addr addr, L2AccessKind kind, Cycle cycle)
{
    if (sharedL2_ != nullptr)
        return sharedL2_->access(coreId_, addr, kind, cycle);
    return {l2_.access(addr), 0};
}

Cycle
Core::fetch(const MicroOp &op)
{
    Cycle ready = fetchReadyCycle_;

    // The fetch unit touches the I-cache once per line, and the ITLB
    // once per page; redirects (taken branches, mispredict recoveries)
    // show up as line/page changes in the PC stream itself.
    const Addr line = op.pc / kLineBytes;
    if (line != lastFetchLine_) {
        lastFetchLine_ = line;
        const Addr page = op.pc / kPageBytes;
        if (page != lastFetchPage_) {
            lastFetchPage_ = page;
            if (!itlb_.access(op.pc)) {
                ++counters_.itlbMiss;
                ready += config_.pageWalkLatency;
                opPenalties_.frontend += config_.pageWalkLatency;
            }
        }
        if (!l1i_.access(op.pc)) {
            ++counters_.l1iMiss;
            // Code refills from the unified L2; the PMU's L2M metric
            // (MEM_LOAD_RETIRED.L2_LINE_MISS) counts loads only, so a
            // code L2 miss costs time without bumping that counter.
            const L2AccessResult l2r =
                l2Access(op.pc, L2AccessKind::Code, ready);
            const Cycle refill = (l2r.hit ? config_.l1iMissToL2Latency
                                          : config_.memLatency) +
                                 l2r.queueDelay;
            ready += refill;
            opPenalties_.frontend += refill;
        }
    }

    const Cycle lcp_bubble = decoder_.decode(op);
    if (lcp_bubble > 0) {
        ++counters_.lcpStalls;
        ready += lcp_bubble;
        opPenalties_.frontend += lcp_bubble;
    }
    return ready;
}

Cycle
Core::executeLoad(const MicroOp &op, Cycle issue)
{
    Cycle extra = 0;

    const DtlbLoadResult translation = dtlb_.translateLoad(op.addr);
    if (!translation.l0Hit) {
        ++counters_.dtlbL0LdMiss;
        if (translation.mainHit) {
            extra += config_.dtlbL0MissLatency;
            opPenalties_.dtlb += config_.dtlbL0MissLatency;
        } else {
            ++counters_.dtlbLdMiss;
            ++counters_.dtlbLdRetiredMiss;
            ++counters_.dtlbAnyMiss;
            extra += config_.pageWalkLatency;
            opPenalties_.dtlb += config_.pageWalkLatency;
        }
    }

    const LoadBlockResult block = lsq_.checkLoad(op.addr, op.size, seq_);
    if (block.sta)
        ++counters_.ldBlockSta;
    if (block.std)
        ++counters_.ldBlockStd;
    if (block.overlap)
        ++counters_.ldBlockOverlapStore;
    extra += block.penalty;
    opPenalties_.storeForward += block.penalty;

    if (op.addr % op.size != 0) {
        ++counters_.misalignedMemRef;
        extra += config_.misalignPenalty;
        opPenalties_.memOther += config_.misalignPenalty;
    }

    const bool split =
        (op.addr / kLineBytes) != ((op.addr + op.size - 1) / kLineBytes);
    if (split) {
        ++counters_.l1dSplitLoads;
        extra += config_.splitPenalty;
        opPenalties_.memOther += config_.splitPenalty;
    }

    auto line_latency = [this, issue](Addr addr, bool count_load_miss) {
        if (l1d_.access(addr))
            return config_.l1dHitLatency;
        if (count_load_miss)
            ++counters_.l1dLineMiss;
        const L2AccessResult l2r =
            l2Access(addr, L2AccessKind::Load, issue);
        if (l2r.hit) {
            opPenalties_.memL1d += config_.l2HitLatency -
                                   config_.l1dHitLatency +
                                   l2r.queueDelay;
            return config_.l2HitLatency + l2r.queueDelay;
        }
        if (count_load_miss)
            ++counters_.l2LineMiss;
        opPenalties_.memL2 += config_.memLatency -
                              config_.l1dHitLatency + l2r.queueDelay;
        return config_.memLatency + l2r.queueDelay;
    };

    Cycle latency = line_latency(op.addr, true);
    if (split) {
        // The second half accesses the next line; the load completes
        // when the slower half returns.
        latency = std::max(latency,
                           line_latency(op.addr + op.size - 1, false));
    }
    return issue + latency + extra;
}

Cycle
Core::executeStore(const MicroOp &op, Cycle issue)
{
    Cycle extra = 0;

    if (!dtlb_.translateStore(op.addr)) {
        ++counters_.dtlbAnyMiss;
        extra += config_.pageWalkLatency;
        opPenalties_.dtlb += config_.pageWalkLatency;
    }

    if (op.addr % op.size != 0) {
        ++counters_.misalignedMemRef;
        extra += config_.misalignPenalty;
        opPenalties_.memOther += config_.misalignPenalty;
    }
    const bool split =
        (op.addr / kLineBytes) != ((op.addr + op.size - 1) / kLineBytes);
    if (split) {
        ++counters_.l1dSplitStores;
        extra += config_.splitPenalty;
        opPenalties_.memOther += config_.splitPenalty;
    }

    // Stores retire into the store buffer: the write itself drains in
    // the background, so cache state updates but store misses do not
    // add commit latency (and the PMU's load-miss events stay load
    // only). Write-allocate keeps the tags warm for later loads.
    if (!l1d_.access(op.addr))
        l2Access(op.addr, L2AccessKind::Store, issue);

    lsq_.recordStore(op.addr, op.size, op.storeAddrSlow, seq_);
    return issue + 1 + extra;
}

void
Core::execute(const MicroOp &op)
{
    opPenalties_ = OpPenalties{};
    // A mispredict's re-steer delays the *following* fetch; charge it
    // to the first correct-path instruction, whose commit gap shows it.
    opPenalties_.resteer = pendingResteer_;
    pendingResteer_ = 0;

    // --- Front end -----------------------------------------------
    const Cycle fetch_ready = fetch(op);
    fetchReadyCycle_ = fetch_ready;

    // --- Dispatch: width per cycle, bounded by the reorder window --
    // robHead_ is seq_ % robSize maintained incrementally: the slot
    // still holds the commit cycle of op seq_ - robSize (the entry
    // this op waits on) and is overwritten with this op's commit below.
    Cycle dispatch = std::max(fetch_ready, lastDispatchCycle_);
    dispatch = std::max(dispatch, robCommit_[robHead_]);
    if (dispatch == lastDispatchCycle_ &&
        dispatchedThisCycle_ >= config_.width) {
        dispatch += 1;
    }
    if (dispatch > lastDispatchCycle_) {
        lastDispatchCycle_ = dispatch;
        dispatchedThisCycle_ = 1;
    } else {
        ++dispatchedThisCycle_;
    }

    // --- Issue: wait for the producer and an issue port ------------
    Cycle issue = dispatch;
    if (op.depDist > 0 && op.depDist <= seq_ &&
        static_cast<std::size_t>(op.depDist) < kResultRing) {
        issue = std::max(
            issue, resultReady_[(seq_ - op.depDist) & (kResultRing - 1)]);
    }
    issue = acquirePort(op.cls, dispatch, issue);

    // --- Execute ---------------------------------------------------
    Cycle complete = issue;
    bool mispredicted = false;
    switch (op.cls) {
      case OpClass::IntAlu:
        complete = issue + config_.intAluLatency;
        break;
      case OpClass::IntMul:
        complete = issue + config_.intMulLatency;
        break;
      case OpClass::FpAdd:
        complete = issue + config_.fpAddLatency;
        break;
      case OpClass::FpMul:
        complete = issue + config_.fpMulLatency;
        break;
      case OpClass::FpDiv:
        complete = issue + config_.fpDivLatency;
        opPenalties_.longLatency += config_.fpDivLatency - 1;
        break;
      case OpClass::Load:
        complete = executeLoad(op, issue);
        ++counters_.instLoads;
        break;
      case OpClass::Store:
        complete = executeStore(op, issue);
        ++counters_.instStores;
        break;
      case OpClass::Branch:
        complete = issue + config_.intAluLatency;
        ++counters_.brRetired;
        if (!bp_.predictAndUpdate(op.pc, op.taken)) {
            ++counters_.brMispredicted;
            pendingResteer_ += config_.mispredictPenalty;
            mispredicted = true;
        }
        break;
    }

    // --- Commit: in order, width per cycle -------------------------
    const Cycle commit_before = lastCommitCycle_;
    Cycle commit = std::max(complete, lastCommitCycle_);
    if (commit == lastCommitCycle_ &&
        committedThisCycle_ >= config_.width) {
        commit += 1;
    }
    if (commit > lastCommitCycle_) {
        lastCommitCycle_ = commit;
        committedThisCycle_ = 1;
    } else {
        ++committedThisCycle_;
    }

    // --- Cycle attribution -----------------------------------------
    // Charge this instruction's commit gap to its own penalties,
    // largest first; one cycle of any remaining gap is the issue
    // base, the rest is dependency/window stall.
    Cycle gap = commit - commit_before;
    if (gap > 0) {
        auto charge = [&gap](std::uint64_t &bucket, Cycle amount) {
            const Cycle take = std::min(gap, amount);
            bucket += take;
            gap -= take;
        };
        charge(stack_.resteer, opPenalties_.resteer);
        charge(stack_.memL2, opPenalties_.memL2);
        charge(stack_.dtlb, opPenalties_.dtlb);
        charge(stack_.memL1d, opPenalties_.memL1d);
        charge(stack_.frontend, opPenalties_.frontend);
        charge(stack_.storeForward, opPenalties_.storeForward);
        charge(stack_.memOther, opPenalties_.memOther);
        charge(stack_.longLatency, opPenalties_.longLatency);
        if (gap > 0) {
            stack_.base += 1;
            stack_.window += gap - 1;
        }
    }

    robCommit_[robHead_] = commit;
    if (++robHead_ == config_.robSize)
        robHead_ = 0;
    resultReady_[seq_ & (kResultRing - 1)] = complete;

    if (mispredicted) {
        // Wrong-path fetch is not simulated; the re-steer appears as
        // the front end going quiet until the branch resolves plus the
        // pipeline refill penalty.
        fetchReadyCycle_ = std::max(
            fetchReadyCycle_, complete + config_.mispredictPenalty);
        // The next correct-path fetch re-touches I-cache and ITLB.
        lastFetchLine_ = ~0ULL;
    }

    ++seq_;
    ++counters_.instRetired;
    counters_.cycles = lastCommitCycle_;
}

void
Core::reset()
{
    l1i_.reset();
    l1d_.reset();
    l2_.reset();
    dtlb_.reset();
    itlb_.reset();
    bp_.reset();
    decoder_.reset();
    lsq_.reset();
    counters_.reset();
    stack_ = CpiStack{};
    opPenalties_ = OpPenalties{};
    pendingResteer_ = 0;
    seq_ = 0;
    fetchReadyCycle_ = 0;
    lastDispatchCycle_ = 0;
    dispatchedThisCycle_ = 0;
    lastCommitCycle_ = 0;
    committedThisCycle_ = 0;
    lastFetchLine_ = ~0ULL;
    lastFetchPage_ = ~0ULL;
    std::fill(robCommit_.begin(), robCommit_.end(), 0);
    robHead_ = 0;
    resultReady_.fill(0);
    std::fill(portFree_.begin(), portFree_.end(), 0);
}

} // namespace mtperf::uarch
