/**
 * @file
 * Instruction-length decoder model (LCP stalls).
 *
 * On Core 2, an operand-size-changing prefix (a "length changing
 * prefix", e.g. 66h before an instruction with an immediate) defeats
 * the pre-decoder's length speculation and costs a multi-cycle stall
 * (ILD_STALL). Workloads compiled with 16-bit immediates — the paper
 * calls out 403.gcc — hit this repeatedly. The model charges a fixed
 * pre-decode bubble per LCP-marked instruction.
 */

#ifndef MTPERF_UARCH_DECODER_H_
#define MTPERF_UARCH_DECODER_H_

#include <cstdint>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Decoder timing parameters. */
struct DecoderConfig
{
    /** Pre-decode bubble per length-changing prefix, in cycles. */
    Cycle lcpStallCycles = 6;
};

/** Front-end length-decoder model: counts and charges LCP stalls. */
class Decoder
{
  public:
    explicit Decoder(const DecoderConfig &config = {});

    /**
     * Account for one fetched instruction.
     * @return the decode bubble in cycles (0 for ordinary encodings).
     */
    Cycle decode(const MicroOp &op);

    /** Clear statistics. */
    void reset();

    std::uint64_t lcpStalls() const { return lcpStalls_; }

  private:
    DecoderConfig config_;
    std::uint64_t lcpStalls_ = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_DECODER_H_
