/**
 * @file
 * Instruction-length decoder model (LCP stalls).
 *
 * On Core 2, an operand-size-changing prefix (a "length changing
 * prefix", e.g. 66h before an instruction with an immediate) defeats
 * the pre-decoder's length speculation and costs a multi-cycle stall
 * (ILD_STALL). Workloads compiled with 16-bit immediates — the paper
 * calls out 403.gcc — hit this repeatedly. The model charges a fixed
 * pre-decode bubble per LCP-marked instruction.
 *
 * Decode results are memoized in a small direct-mapped cache keyed by
 * instruction identity (pc): re-decoding a hot loop body reduces to a
 * tag compare instead of re-deriving the bubble. The cached entry is
 * validated against the op's hasLcp flag, so a pc whose encoding
 * changes (self-modifying workloads, aliased synthetic pcs) never
 * serves a stale bubble — results are bit-identical with the cache on,
 * off, or any size. Statistics (lcpStalls) are charged per dynamic
 * instruction either way.
 */

#ifndef MTPERF_UARCH_DECODER_H_
#define MTPERF_UARCH_DECODER_H_

#include <cstdint>
#include <vector>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Decoder timing parameters. */
struct DecoderConfig
{
    /** Pre-decode bubble per length-changing prefix, in cycles. */
    Cycle lcpStallCycles = 6;

    /**
     * Decoded-op cache capacity (entries, rounded up to a power of
     * two). 0 disables memoization; hit/miss accounting then reports
     * every decode as a miss.
     */
    std::size_t decodeCacheEntries = 2048;
};

/** Front-end length-decoder model: counts and charges LCP stalls. */
class Decoder
{
  public:
    explicit Decoder(const DecoderConfig &config = {});

    /**
     * Account for one fetched instruction.
     * @return the decode bubble in cycles (0 for ordinary encodings).
     */
    Cycle decode(const MicroOp &op);

    /** Clear statistics and the decoded-op cache. */
    void reset();

    std::uint64_t lcpStalls() const { return lcpStalls_; }

    /** @name Decode-cache accounting (hits + misses == lookups). */
    ///@{
    std::uint64_t cacheLookups() const { return cacheLookups_; }
    std::uint64_t cacheHits() const { return cacheHits_; }
    std::uint64_t cacheMisses() const { return cacheMisses_; }
    ///@}

  private:
    /** One memoized decode; pc == kEmptyTag means never filled. */
    struct CacheEntry
    {
        Addr pc = kEmptyTag;
        bool hasLcp = false;
        Cycle bubble = 0;
    };

    static constexpr Addr kEmptyTag = ~Addr{0};

    DecoderConfig config_;
    std::uint64_t lcpStalls_ = 0;
    std::uint64_t cacheLookups_ = 0;
    std::uint64_t cacheHits_ = 0;
    std::uint64_t cacheMisses_ = 0;
    std::vector<CacheEntry> cache_; //!< direct-mapped, power-of-two
    std::size_t indexMask_ = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_DECODER_H_
