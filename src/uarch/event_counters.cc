#include "uarch/event_counters.h"

#include "common/logging.h"

namespace mtperf::uarch {

const std::array<CounterField, kNumEventCounters> &
counterFields()
{
    static const std::array<CounterField, kNumEventCounters> fields = {{
        {"cycles", &EventCounters::cycles},
        {"instRetired", &EventCounters::instRetired},
        {"instLoads", &EventCounters::instLoads},
        {"instStores", &EventCounters::instStores},
        {"brRetired", &EventCounters::brRetired},
        {"brMispredicted", &EventCounters::brMispredicted},
        {"l1dLineMiss", &EventCounters::l1dLineMiss},
        {"l1iMiss", &EventCounters::l1iMiss},
        {"l2LineMiss", &EventCounters::l2LineMiss},
        {"dtlbL0LdMiss", &EventCounters::dtlbL0LdMiss},
        {"dtlbLdMiss", &EventCounters::dtlbLdMiss},
        {"dtlbLdRetiredMiss", &EventCounters::dtlbLdRetiredMiss},
        {"dtlbAnyMiss", &EventCounters::dtlbAnyMiss},
        {"itlbMiss", &EventCounters::itlbMiss},
        {"ldBlockSta", &EventCounters::ldBlockSta},
        {"ldBlockStd", &EventCounters::ldBlockStd},
        {"ldBlockOverlapStore", &EventCounters::ldBlockOverlapStore},
        {"misalignedMemRef", &EventCounters::misalignedMemRef},
        {"l1dSplitLoads", &EventCounters::l1dSplitLoads},
        {"l1dSplitStores", &EventCounters::l1dSplitStores},
        {"lcpStalls", &EventCounters::lcpStalls},
        {"l2SharedMisses", &EventCounters::l2SharedMisses},
        {"l2OccupancyEvictedByOther",
         &EventCounters::l2OccupancyEvictedByOther},
        {"prefetchCancellations", &EventCounters::prefetchCancellations},
    }};
    return fields;
}

std::uint64_t EventCounters::*
counterByName(const std::string &name)
{
    for (const CounterField &field : counterFields()) {
        if (name == field.name)
            return field.member;
    }
    return nullptr;
}

namespace {

struct MetricRow
{
    std::string name;
    std::string event;
    std::string description;
};

const std::array<MetricRow, kNumPerfMetrics> &
metricTable()
{
    static const std::array<MetricRow, kNumPerfMetrics> table = {{
        {"InstLd", "INST_RETIRED.LOADS", "Loads per instruction"},
        {"InstSt", "INST_RETIRED.STORES", "Stores per instruction"},
        {"BrMisPr", "BR_INST_RETIRED.MISPRED",
         "Mispredicted branches per instruction"},
        {"BrPred", "BR_INST_RETIRED.ANY - BR_INST_RETIRED.MISPRED",
         "Correctly predicted branches per instruction"},
        {"InstOther",
         "INST_RETIRED.ANY - (INST_RETIRED.LOADS + INST_RETIRED.STORES "
         "+ BR_INST_RETIRED.ANY)",
         "Non-branch and memory instructions per instruction"},
        {"L1DM", "MEM_LOAD_RETIRED.L1D_LINE_MISS",
         "L1 data misses per instruction"},
        {"L1IM", "L1I_MISSES", "L1 instruction misses per instruction"},
        {"L2M", "MEM_LOAD_RETIRED.L2_LINE_MISS",
         "L2 misses per instruction"},
        {"DtlbL0LdM", "DTLB_MISSES.L0_MISS_LD",
         "Lowest level DTLB load misses per instruction"},
        {"DtlbLdM", "DTLB_MISSES.MISS_LD",
         "Last level DTLB load misses per instruction"},
        {"DtlbLdReM", "MEM_LOAD_RETIRED.DTLB_MISS",
         "Last level DTLB retired load misses per instruction"},
        {"Dtlb", "DTLB_MISSES.ANY",
         "Last level DTLB misses (including loads) per instruction"},
        {"ItlbM", "ITLB.MISS_RETIRED", "ITLB misses per instruction"},
        {"LdBlSta", "LOAD_BLOCK.STA",
         "Load block store address events per instruction"},
        {"LdBlStd", "LOAD_BLOCK.STD",
         "Load block store data events per instruction"},
        {"LdBlOvSt", "LOAD_BLOCK.OVERLAP_STORE",
         "Load block overlap store per instruction"},
        {"MisalRef", "MISALIGN_MEM_REF",
         "Misaligned memory references per instruction"},
        {"L1DSpLd", "L1D_SPLIT.LOADS",
         "L1 data split loads per instruction"},
        {"L1DSpSt", "L1D_SPLIT.STORES",
         "L1 data split stores per instruction"},
        {"LCP", "ILD_STALL",
         "Length changing prefix stalls per instruction"},
    }};
    return table;
}

} // namespace

EventCounters
EventCounters::delta(const EventCounters &earlier) const
{
    EventCounters d;
    d.cycles = cycles - earlier.cycles;
    d.instRetired = instRetired - earlier.instRetired;
    d.instLoads = instLoads - earlier.instLoads;
    d.instStores = instStores - earlier.instStores;
    d.brRetired = brRetired - earlier.brRetired;
    d.brMispredicted = brMispredicted - earlier.brMispredicted;
    d.l1dLineMiss = l1dLineMiss - earlier.l1dLineMiss;
    d.l1iMiss = l1iMiss - earlier.l1iMiss;
    d.l2LineMiss = l2LineMiss - earlier.l2LineMiss;
    d.dtlbL0LdMiss = dtlbL0LdMiss - earlier.dtlbL0LdMiss;
    d.dtlbLdMiss = dtlbLdMiss - earlier.dtlbLdMiss;
    d.dtlbLdRetiredMiss = dtlbLdRetiredMiss - earlier.dtlbLdRetiredMiss;
    d.dtlbAnyMiss = dtlbAnyMiss - earlier.dtlbAnyMiss;
    d.itlbMiss = itlbMiss - earlier.itlbMiss;
    d.ldBlockSta = ldBlockSta - earlier.ldBlockSta;
    d.ldBlockStd = ldBlockStd - earlier.ldBlockStd;
    d.ldBlockOverlapStore = ldBlockOverlapStore - earlier.ldBlockOverlapStore;
    d.misalignedMemRef = misalignedMemRef - earlier.misalignedMemRef;
    d.l1dSplitLoads = l1dSplitLoads - earlier.l1dSplitLoads;
    d.l1dSplitStores = l1dSplitStores - earlier.l1dSplitStores;
    d.lcpStalls = lcpStalls - earlier.lcpStalls;
    d.l2SharedMisses = l2SharedMisses - earlier.l2SharedMisses;
    d.l2OccupancyEvictedByOther =
        l2OccupancyEvictedByOther - earlier.l2OccupancyEvictedByOther;
    d.prefetchCancellations =
        prefetchCancellations - earlier.prefetchCancellations;
    return d;
}

const std::string &
metricName(PerfMetric metric)
{
    return metricTable()[static_cast<std::size_t>(metric)].name;
}

const std::string &
metricDescription(PerfMetric metric)
{
    return metricTable()[static_cast<std::size_t>(metric)].description;
}

const std::string &
metricEvent(PerfMetric metric)
{
    return metricTable()[static_cast<std::size_t>(metric)].event;
}

std::array<double, kNumPerfMetrics>
metricRatios(const EventCounters &c)
{
    mtperf_assert(c.instRetired > 0,
                  "metric ratios need a nonzero instruction count");
    const auto inst = static_cast<double>(c.instRetired);
    auto per_inst = [inst](std::uint64_t count) {
        return static_cast<double>(count) / inst;
    };

    const std::uint64_t br_pred = c.brRetired - c.brMispredicted;
    const std::uint64_t mem_br =
        c.instLoads + c.instStores + c.brRetired;
    const std::uint64_t other =
        c.instRetired > mem_br ? c.instRetired - mem_br : 0;

    return {
        per_inst(c.instLoads),
        per_inst(c.instStores),
        per_inst(c.brMispredicted),
        per_inst(br_pred),
        per_inst(other),
        per_inst(c.l1dLineMiss),
        per_inst(c.l1iMiss),
        per_inst(c.l2LineMiss),
        per_inst(c.dtlbL0LdMiss),
        per_inst(c.dtlbLdMiss),
        per_inst(c.dtlbLdRetiredMiss),
        per_inst(c.dtlbAnyMiss),
        per_inst(c.itlbMiss),
        per_inst(c.ldBlockSta),
        per_inst(c.ldBlockStd),
        per_inst(c.ldBlockOverlapStore),
        per_inst(c.misalignedMemRef),
        per_inst(c.l1dSplitLoads),
        per_inst(c.l1dSplitStores),
        per_inst(c.lcpStalls),
    };
}

double
cpiOf(const EventCounters &c)
{
    mtperf_assert(c.instRetired > 0, "CPI needs a nonzero instruction count");
    return static_cast<double>(c.cycles) /
           static_cast<double>(c.instRetired);
}

Schema
perfSchema()
{
    std::vector<Attribute> attrs;
    attrs.reserve(kNumPerfMetrics);
    for (const auto &row : metricTable())
        attrs.push_back({row.name, row.description});
    return Schema(std::move(attrs), "CPI");
}

namespace {

const std::array<MetricRow, kNumContentionMetrics> &
contentionTable()
{
    static const std::array<MetricRow, kNumContentionMetrics> table = {{
        {"L2ShM", "L2_SHARED_MISSES",
         "Shared L2 re-misses on lines lost to another core, "
         "per instruction"},
        {"L2EvOth", "L2_OCCUPANCY_EVICTED_BY_OTHER",
         "Shared L2 lines of this core evicted by another core, "
         "per instruction"},
        {"PfCancel", "PREFETCH_CANCELLATIONS",
         "Shared-streamer retrains forced by another core, "
         "per instruction"},
    }};
    return table;
}

} // namespace

const std::string &
contentionMetricName(std::size_t index)
{
    return contentionTable()[index].name;
}

std::array<double, kNumCorunMetrics>
corunMetricRatios(const EventCounters &c)
{
    const std::array<double, kNumPerfMetrics> base = metricRatios(c);
    const auto inst = static_cast<double>(c.instRetired);
    std::array<double, kNumCorunMetrics> out{};
    for (std::size_t i = 0; i < kNumPerfMetrics; ++i)
        out[i] = base[i];
    out[kNumPerfMetrics + 0] =
        static_cast<double>(c.l2SharedMisses) / inst;
    out[kNumPerfMetrics + 1] =
        static_cast<double>(c.l2OccupancyEvictedByOther) / inst;
    out[kNumPerfMetrics + 2] =
        static_cast<double>(c.prefetchCancellations) / inst;
    return out;
}

Schema
corunPerfSchema()
{
    std::vector<Attribute> attrs;
    attrs.reserve(kNumCorunMetrics);
    for (const auto &row : metricTable())
        attrs.push_back({row.name, row.description});
    for (const auto &row : contentionTable())
        attrs.push_back({row.name, row.description});
    return Schema(std::move(attrs), "CPI");
}

} // namespace mtperf::uarch
