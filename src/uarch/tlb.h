/**
 * @file
 * Translation lookaside buffer models.
 *
 * Core 2 translates loads through a tiny L0 DTLB backed by the main
 * DTLB; stores use the main DTLB directly, and instruction fetch has
 * its own ITLB. The paper's DTLB metrics distinguish exactly these
 * paths (DTLB_MISSES.L0_MISS_LD, .MISS_LD, .ANY, ITLB.MISS_RETIRED),
 * so the model keeps the same split.
 */

#ifndef MTPERF_UARCH_TLB_H_
#define MTPERF_UARCH_TLB_H_

#include <cstdint>
#include <vector>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Geometry of one TLB level. */
struct TlbConfig
{
    std::uint32_t entries = 256;
    std::uint32_t associativity = 4;
    std::uint32_t pageBytes = kPageBytes;
};

/** A set-associative TLB with LRU replacement (tags only). */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Look up (and on miss, fill) the page of @p addr. @return hit. */
    bool access(Addr addr);

    /** Invalidate all entries and statistics. */
    void reset();

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        Addr vpn = ~0ULL;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    TlbConfig config_;
    std::uint32_t numSets_ = 0;
    std::uint32_t pageShift_ = 0;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/** Result of a load translation through the two-level DTLB. */
struct DtlbLoadResult
{
    bool l0Hit = false;   //!< hit in the tiny L0 load DTLB
    bool mainHit = false; //!< hit in the main DTLB (when L0 missed)
};

/**
 * Core-2-like data TLB: 16-entry fully associative L0 for loads in
 * front of a 256-entry main DTLB shared by loads and stores.
 */
class TwoLevelDtlb
{
  public:
    /** @param l0 geometry of the load L0; @param main main DTLB. */
    TwoLevelDtlb(const TlbConfig &l0, const TlbConfig &main);

    /** Translate a load address. */
    DtlbLoadResult translateLoad(Addr addr);

    /** Translate a store address. @return main DTLB hit. */
    bool translateStore(Addr addr);

    void reset();

  private:
    Tlb l0_;
    Tlb main_;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_TLB_H_
