/**
 * @file
 * Load/store queue model for store-forwarding hazards.
 *
 * Core 2 loads that interact badly with in-flight stores stall and
 * re-issue; the PMU distinguishes three cases the paper uses as
 * predictors: LOAD_BLOCK.STA (an older store's address is unknown),
 * LOAD_BLOCK.STD (the matching store's data is not ready to forward)
 * and LOAD_BLOCK.OVERLAP_STORE (a partial overlap that cannot forward
 * at all and must wait for the store to drain). The model keeps a
 * small buffer of recent stores and classifies each load against it.
 */

#ifndef MTPERF_UARCH_LSQ_H_
#define MTPERF_UARCH_LSQ_H_

#include <cstdint>
#include <vector>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Load/store queue timing parameters. */
struct LsqConfig
{
    std::uint32_t storeBufferEntries = 20; //!< tracked in-flight stores
    std::uint32_t staWindowOps = 4;  //!< ops until a slow address resolves
    std::uint32_t stdWindowOps = 2;  //!< ops until store data can forward
    Cycle staBlockCycles = 5;
    Cycle stdBlockCycles = 6;
    Cycle overlapBlockCycles = 5;
};

/** Outcome of checking one load against the store buffer. */
struct LoadBlockResult
{
    Cycle penalty = 0;
    bool sta = false;
    bool std = false;
    bool overlap = false;
};

/** Store buffer + load-block classifier. */
class LoadStoreQueue
{
  public:
    explicit LoadStoreQueue(const LsqConfig &config = {});

    /**
     * Record a store entering the buffer.
     * @param seq the dynamic instruction sequence number.
     */
    void recordStore(Addr addr, std::uint8_t size, bool addr_slow,
                     std::uint64_t seq);

    /** Classify a load against buffered older stores. */
    LoadBlockResult checkLoad(Addr addr, std::uint8_t size,
                              std::uint64_t seq);

    /** Drop all buffered stores and clear statistics. */
    void reset();

    std::uint64_t staBlocks() const { return staBlocks_; }
    std::uint64_t stdBlocks() const { return stdBlocks_; }
    std::uint64_t overlapBlocks() const { return overlapBlocks_; }

  private:
    struct StoreEntry
    {
        Addr addr = 0;
        std::uint8_t size = 0;
        bool addrSlow = false;
        std::uint64_t seq = 0;
        bool valid = false;
    };

    LsqConfig config_;
    std::vector<StoreEntry> buffer_; //!< ring of recent stores
    std::size_t head_ = 0;
    std::uint64_t staBlocks_ = 0;
    std::uint64_t stdBlocks_ = 0;
    std::uint64_t overlapBlocks_ = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_LSQ_H_
