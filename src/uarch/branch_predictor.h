/**
 * @file
 * Branch direction predictors.
 *
 * The timing core uses a gshare/bimodal hybrid comparable in fidelity
 * to Core 2's front end for the purposes of this study: mostly-biased
 * branches predict almost perfectly, history-correlated branches are
 * captured by gshare, and high-entropy branches expose the pipeline
 * flush penalty the paper's BrMisPr metric measures.
 */

#ifndef MTPERF_UARCH_BRANCH_PREDICTOR_H_
#define MTPERF_UARCH_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <vector>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Geometry of the hybrid predictor. */
struct BranchPredictorConfig
{
    std::uint32_t historyBits = 12;   //!< gshare global-history length
    std::uint32_t bimodalBits = 12;   //!< log2 of bimodal table entries
    std::uint32_t chooserBits = 12;   //!< log2 of chooser table entries
};

/** Gshare/bimodal tournament predictor with 2-bit counters. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &config = {});

    /**
     * Predict the branch at @p pc, then update all tables with the
     * actual @p taken outcome.
     * @return true if the prediction was correct.
     */
    bool predictAndUpdate(Addr pc, bool taken);

    /** Clear tables, history and statistics. */
    void reset();

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredictions() const { return mispredictions_; }

    /** Misprediction ratio; 0 before any prediction. */
    double mispredictRatio() const;

  private:
    static std::uint8_t saturate(std::uint8_t counter, bool up);

    BranchPredictorConfig config_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t history_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredictions_ = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_BRANCH_PREDICTOR_H_
