/**
 * @file
 * The hardware event counters of Table I.
 *
 * EventCounters is the per-core counter file every structural model
 * increments. PerfMetric enumerates the paper's 20 derived
 * per-instruction predictor metrics; metricRatios() turns a counter
 * delta into those ratios and perfSchema() names them for datasets,
 * matching the paper's abbreviations (InstLd, BrMisPr, L2M, ...).
 */

#ifndef MTPERF_UARCH_EVENT_COUNTERS_H_
#define MTPERF_UARCH_EVENT_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

#include "data/attribute.h"

namespace mtperf::uarch {

/** Raw event counts, mirroring the Core-2 events of Table I. */
struct EventCounters
{
    std::uint64_t cycles = 0;          //!< CPU_CLK_UNHALTED.CORE
    std::uint64_t instRetired = 0;     //!< INST_RETIRED.ANY
    std::uint64_t instLoads = 0;       //!< INST_RETIRED.LOADS
    std::uint64_t instStores = 0;      //!< INST_RETIRED.STORES
    std::uint64_t brRetired = 0;       //!< BR_INST_RETIRED.ANY
    std::uint64_t brMispredicted = 0;  //!< BR_INST_RETIRED.MISPRED
    std::uint64_t l1dLineMiss = 0;     //!< MEM_LOAD_RETIRED.L1D_LINE_MISS
    std::uint64_t l1iMiss = 0;         //!< L1I_MISSES
    std::uint64_t l2LineMiss = 0;      //!< MEM_LOAD_RETIRED.L2_LINE_MISS
    std::uint64_t dtlbL0LdMiss = 0;    //!< DTLB_MISSES.L0_MISS_LD
    std::uint64_t dtlbLdMiss = 0;      //!< DTLB_MISSES.MISS_LD
    std::uint64_t dtlbLdRetiredMiss = 0; //!< MEM_LOAD_RETIRED.DTLB_MISS
    std::uint64_t dtlbAnyMiss = 0;     //!< DTLB_MISSES.ANY
    std::uint64_t itlbMiss = 0;        //!< ITLB.MISS_RETIRED
    std::uint64_t ldBlockSta = 0;      //!< LOAD_BLOCK.STA
    std::uint64_t ldBlockStd = 0;      //!< LOAD_BLOCK.STD
    std::uint64_t ldBlockOverlapStore = 0; //!< LOAD_BLOCK.OVERLAP_STORE
    std::uint64_t misalignedMemRef = 0; //!< MISALIGN_MEM_REF
    std::uint64_t l1dSplitLoads = 0;   //!< L1D_SPLIT.LOADS
    std::uint64_t l1dSplitStores = 0;  //!< L1D_SPLIT.STORES
    std::uint64_t lcpStalls = 0;       //!< ILD_STALL

    // Shared-hierarchy interference events. A single-core run owns
    // its whole hierarchy, so these are structurally zero there; a
    // multicore co-run's shared L2 attributes them per core.
    std::uint64_t l2SharedMisses = 0; //!< demand re-miss on a line this
                                      //!< core lost to another core
    std::uint64_t l2OccupancyEvictedByOther = 0; //!< this core's lines
                                                 //!< evicted by others
    std::uint64_t prefetchCancellations = 0; //!< shared-streamer retrains
                                             //!< stolen by another core

    /** Zero every counter. */
    void reset() { *this = EventCounters{}; }

    /** Elementwise difference (this - earlier snapshot). */
    EventCounters delta(const EventCounters &earlier) const;
};

/** Number of EventCounters fields (cycles, 20 events, 3 contention). */
inline constexpr std::size_t kNumEventCounters = 24;

/**
 * One EventCounters field, addressable by name: the glue that lets
 * generic code (the counter-oracle validator, drift reports) iterate
 * the whole counter file without hand-maintained field lists.
 */
struct CounterField
{
    const char *name;                    //!< struct field name
    std::uint64_t EventCounters::*member;
};

/** Every EventCounters field, in declaration order. */
const std::array<CounterField, kNumEventCounters> &counterFields();

/** Member pointer for @p name, or nullptr if no such counter. */
std::uint64_t EventCounters::*counterByName(const std::string &name);

/** The paper's 20 predictor metrics, in Table I order (minus CPI). */
enum class PerfMetric : std::uint8_t {
    InstLd,
    InstSt,
    BrMisPr,
    BrPred,
    InstOther,
    L1DM,
    L1IM,
    L2M,
    DtlbL0LdM,
    DtlbLdM,
    DtlbLdReM,
    Dtlb,
    ItlbM,
    LdBlSta,
    LdBlStd,
    LdBlOvSt,
    MisalRef,
    L1DSpLd,
    L1DSpSt,
    LCP,
};

/** Number of predictor metrics. */
inline constexpr std::size_t kNumPerfMetrics = 20;

/** Short name of a metric, as the paper abbreviates it. */
const std::string &metricName(PerfMetric metric);

/** Human description of a metric (Table I's description column). */
const std::string &metricDescription(PerfMetric metric);

/** Underlying hardware event expression (Table I's event column). */
const std::string &metricEvent(PerfMetric metric);

/**
 * Per-instruction ratios of a counter delta, in PerfMetric order.
 * @pre counters.instRetired > 0.
 */
std::array<double, kNumPerfMetrics> metricRatios(
    const EventCounters &counters);

/** CPI of a counter delta. @pre counters.instRetired > 0. */
double cpiOf(const EventCounters &counters);

/**
 * Dataset schema with one attribute per PerfMetric (with Table I
 * descriptions) and "CPI" as the target.
 */
Schema perfSchema();

/** Number of contention metrics appended by corunPerfSchema(). */
inline constexpr std::size_t kNumContentionMetrics = 3;

/** Number of attributes in corunPerfSchema(). */
inline constexpr std::size_t kNumCorunMetrics =
    kNumPerfMetrics + kNumContentionMetrics;

/** Short name of contention metric @p index (0..2). */
const std::string &contentionMetricName(std::size_t index);

/**
 * Per-instruction ratios of a counter delta for co-run datasets: the
 * 20 Table I metrics followed by the 3 contention metrics.
 * @pre counters.instRetired > 0.
 */
std::array<double, kNumCorunMetrics> corunMetricRatios(
    const EventCounters &counters);

/**
 * Dataset schema for multicore co-run sections: perfSchema()'s 20
 * attributes plus the 3 per-instruction contention metrics, so model
 * trees can split on interference-visible events. Target stays "CPI".
 */
Schema corunPerfSchema();

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_EVENT_COUNTERS_H_
