/**
 * @file
 * The seam between a core and a shared last-level cache.
 *
 * A Core built without a port owns its private L2 and times accesses
 * exactly as the single-core model always has. A Core built with an
 * L2Port routes every L2-level access (code refills, demand loads,
 * store drains) through it instead, letting a multicore system
 * interpose a shared cache that arbitrates same-cycle accesses and
 * attributes interference events per core. The port returns hit/miss
 * plus any arbitration delay; the core folds the delay into the
 * latency it charges, so contention is visible in cycle counts
 * without the core knowing who else exists.
 */

#ifndef MTPERF_UARCH_L2_PORT_H_
#define MTPERF_UARCH_L2_PORT_H_

#include <cstdint>

#include "uarch/types.h"

namespace mtperf::uarch {

/** What kind of access a core is making at the L2 level. */
enum class L2AccessKind : std::uint8_t {
    Code,  //!< L1I refill
    Load,  //!< demand load (L1D miss)
    Store, //!< store-buffer drain (write-allocate)
};

/** Outcome of one L2-level access through a port. */
struct L2AccessResult
{
    bool hit = false;
    Cycle queueDelay = 0; //!< extra cycles from same-cycle arbitration
};

/** Abstract L2-level cache a core can share with others. */
class L2Port
{
  public:
    virtual ~L2Port() = default;

    /**
     * Access the line containing @p addr on behalf of @p core at
     * @p cycle. Implementations may assume accesses arrive in
     * nondecreasing @p cycle order with ties in ascending core order
     * (the multicore stepping contract).
     */
    virtual L2AccessResult access(std::uint32_t core, Addr addr,
                                  L2AccessKind kind, Cycle cycle) = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_L2_PORT_H_
