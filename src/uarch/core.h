/**
 * @file
 * A Core-2-Duo-like out-of-order timing model.
 *
 * The core executes a stream of MicroOps in one pass, computing for
 * each a dispatch, issue, completion and in-order commit cycle. The
 * model is mechanistic rather than cycle-accurate: structural state
 * (caches, TLBs, branch predictor, store buffer, decoder) is fully
 * simulated, and the *exposure* of each event's latency emerges from
 *
 *  - dependency chains: an op issues when its producer (depDist ops
 *    earlier) has completed, so pointer-chasing loads serialize their
 *    full memory latency while independent misses overlap (MLP);
 *  - the reorder window: dispatch of op i waits for the commit of op
 *    i - robSize, so a long-latency op eventually fills the window
 *    and stalls the machine, but short latencies hide entirely;
 *  - in-order commit at the machine width, which converts completion
 *    jitter back into a serial cycle count;
 *  - the front end: I-cache/ITLB misses, LCP pre-decode bubbles and
 *    branch-mispredict re-steers delay when later ops can dispatch.
 *
 * This is the same modeling altitude as interval simulation (Genbrugge
 * et al.) and is what makes the generated counter/CPI dataset exhibit
 * the interaction effects the paper's model tree must discover —
 * a uniform per-event penalty model cannot reproduce it.
 */

#ifndef MTPERF_UARCH_CORE_H_
#define MTPERF_UARCH_CORE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/decoder.h"
#include "uarch/event_counters.h"
#include "uarch/l2_port.h"
#include "uarch/lsq.h"
#include "uarch/tlb.h"
#include "uarch/types.h"

namespace mtperf::uarch {

/** Full machine configuration. */
struct CoreConfig
{
    std::uint32_t width = 4;    //!< dispatch/commit width
    std::uint32_t robSize = 96; //!< reorder-window entries

    /** @name Execution latencies (cycles) */
    ///@{
    Cycle intAluLatency = 1;
    Cycle intMulLatency = 3;
    Cycle fpAddLatency = 3;
    Cycle fpMulLatency = 5;
    Cycle fpDivLatency = 32;
    ///@}

    /** @name Memory hierarchy latencies (cycles) */
    ///@{
    Cycle l1dHitLatency = 3;
    Cycle l2HitLatency = 14;
    Cycle memLatency = 165;
    Cycle l1iMissToL2Latency = 12; //!< front-end refill from L2
    Cycle dtlbL0MissLatency = 2;   //!< L0 miss that hits the main DTLB
    Cycle pageWalkLatency = 26;
    Cycle misalignPenalty = 3;
    Cycle splitPenalty = 3;
    ///@}

    /** Re-steer cost after a mispredicted branch resolves. */
    Cycle mispredictPenalty = 15;

    /**
     * Model issue-port contention (off by default). When on, each
     * operation class competes for a finite set of pipelined issue
     * ports patterned after Core 2's: one load port, one store port,
     * three ALU ports shared by integer ops and branches, and one FP
     * port per FP class (the divider is unpipelined).
     */
    bool modelPortContention = false;
    std::uint32_t aluPorts = 3;
    std::uint32_t loadPorts = 1;
    std::uint32_t storePorts = 1;
    std::uint32_t fpAddPorts = 1;
    std::uint32_t fpMulPorts = 1;

    CacheConfig l1i{"L1I", 32 * 1024, 8, kLineBytes, false};
    CacheConfig l1d{"L1D", 32 * 1024, 8, kLineBytes, false};
    CacheConfig l2{"L2", 4 * 1024 * 1024, 16, kLineBytes, true, 6};
    TlbConfig dtlbL0{16, 16, kPageBytes};   //!< fully associative L0
    TlbConfig dtlbMain{256, 4, kPageBytes};
    TlbConfig itlb{128, 4, kPageBytes};
    BranchPredictorConfig branchPredictor{};
    DecoderConfig decoder{};
    LsqConfig lsq{};

    /** The default Core-2-Duo-like configuration. */
    static CoreConfig core2Like() { return CoreConfig{}; }
};

/**
 * Approximate attribution of the cycle count to stall causes.
 *
 * Each instruction's commit-time gap over its predecessor is charged
 * to the penalties that instruction demonstrably incurred (miss
 * latencies, walks, blocks, front-end bubbles, re-steers), in
 * longest-first order; whatever remains is charged to the issue base
 * (one cycle) and to dependency/window stalls. The fields always sum
 * to the total cycle count, making this the simulator-side "CPI
 * stack" that the model tree's per-event attributions can be checked
 * against.
 */
struct CpiStack
{
    std::uint64_t base = 0;        //!< steady-state issue/commit
    std::uint64_t frontend = 0;    //!< L1I / ITLB / LCP fetch bubbles
    std::uint64_t resteer = 0;     //!< branch mispredict recovery
    std::uint64_t memL2 = 0;       //!< load misses going to memory
    std::uint64_t memL1d = 0;      //!< load misses satisfied by L2
    std::uint64_t dtlb = 0;        //!< page walks (loads and stores)
    std::uint64_t storeForward = 0; //!< STA/STD/overlap blocks
    std::uint64_t memOther = 0;    //!< misalignment and line splits
    std::uint64_t longLatency = 0; //!< exposed FP-divide latency
    std::uint64_t window = 0;      //!< dependency / window stalls

    /** Sum of every component (== total cycles). */
    std::uint64_t total() const
    {
        return base + frontend + resteer + memL2 + memL1d + dtlb +
               storeForward + memOther + longLatency + window;
    }

    /** Elementwise difference (this - earlier snapshot). */
    CpiStack delta(const CpiStack &earlier) const;
};

/** One-pass out-of-order timing core. */
class Core
{
  public:
    /**
     * Build a core. With the default null @p shared_l2 the core owns
     * a private L2 and behaves exactly as the single-core model; with
     * a port, every L2-level access goes through it as @p core_id and
     * the private L2 sits unused.
     */
    explicit Core(const CoreConfig &config = CoreConfig::core2Like(),
                  L2Port *shared_l2 = nullptr,
                  std::uint32_t core_id = 0);

    /** Execute (time) one instruction. */
    void execute(const MicroOp &op);

    /** Counter file; cycles reflects the last committed instruction. */
    const EventCounters &counters() const { return counters_; }

    /** Cycle attribution by stall cause (sums to counters().cycles). */
    const CpiStack &cpiStack() const { return stack_; }

    /** Commit cycle of the most recently executed instruction. */
    Cycle currentCycle() const { return lastCommitCycle_; }

    /** Instructions retired so far. */
    std::uint64_t instructionsRetired() const
    {
        return counters_.instRetired;
    }

    /** Full reset: structures, timing state and counters. */
    void reset();

    const CoreConfig &config() const { return config_; }

    /** This core's id within a multicore system (0 when standalone). */
    std::uint32_t coreId() const { return coreId_; }

    /** @name Component access (read-only, for tests and reports) */
    ///@{
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const BranchPredictor &branchPredictor() const { return bp_; }
    const LoadStoreQueue &lsq() const { return lsq_; }
    ///@}

  private:
    Cycle fetch(const MicroOp &op);
    Cycle executeLoad(const MicroOp &op, Cycle issue);
    Cycle executeStore(const MicroOp &op, Cycle issue);
    Cycle acquirePort(OpClass cls, Cycle dispatch, Cycle ready);
    L2AccessResult l2Access(Addr addr, L2AccessKind kind, Cycle cycle);

    CoreConfig config_;
    L2Port *sharedL2_ = nullptr; //!< null = private hierarchy
    std::uint32_t coreId_ = 0;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    TwoLevelDtlb dtlb_;
    Tlb itlb_;
    BranchPredictor bp_;
    Decoder decoder_;
    LoadStoreQueue lsq_;

    EventCounters counters_;
    CpiStack stack_;

    /** Penalties incurred by the instruction currently executing,
     *  consumed by the commit-gap attribution. */
    struct OpPenalties
    {
        Cycle frontend = 0;
        Cycle resteer = 0;
        Cycle memL2 = 0;
        Cycle memL1d = 0;
        Cycle dtlb = 0;
        Cycle storeForward = 0;
        Cycle memOther = 0;
        Cycle longLatency = 0;
    };
    OpPenalties opPenalties_;
    Cycle pendingResteer_ = 0; //!< re-steer to charge to the next op

    std::uint64_t seq_ = 0;          //!< dynamic instruction number
    Cycle fetchReadyCycle_ = 0;      //!< front-end availability
    Cycle lastDispatchCycle_ = 0;
    std::uint32_t dispatchedThisCycle_ = 0;
    Cycle lastCommitCycle_ = 0;
    std::uint32_t committedThisCycle_ = 0;
    Addr lastFetchLine_ = ~0ULL;
    Addr lastFetchPage_ = ~0ULL;

    std::vector<Cycle> robCommit_; //!< commit cycle ring, robSize deep
    /**
     * Ring slot of the current instruction: the same slot is read at
     * dispatch (the commit cycle of op seq - robSize) and overwritten
     * at commit, then the head advances with an incremental wrap —
     * the hot path never divides by the runtime-variable robSize.
     */
    std::size_t robHead_ = 0;

    static constexpr std::size_t kResultRing = 512; //!< power of two
    std::array<Cycle, kResultRing> resultReady_{}; //!< completion ring

    /**
     * Issue-port bookkeeping, flattened: one next-free-cycle array for
     * all ports plus a per-OpClass {offset, count, occupancy} view
     * into it. FpDiv maps onto the FpMul span with the divider's
     * unpipelined occupancy; every other class is pipelined.
     */
    struct PortGroup
    {
        std::uint32_t offset = 0;
        std::uint32_t count = 0;
        Cycle occupancy = 1;
    };
    static constexpr std::size_t kNumOpClasses = 8;
    std::vector<Cycle> portFree_;
    std::array<PortGroup, kNumOpClasses> portGroups_{};
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_CORE_H_
