#include "uarch/branch_predictor.h"

#include "common/logging.h"

namespace mtperf::uarch {

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config)
    : config_(config)
{
    if (config_.historyBits == 0 || config_.historyBits > 24)
        mtperf_fatal("branch predictor: historyBits out of range");
    gshare_.assign(1ULL << config_.historyBits, 2); // weakly taken
    bimodal_.assign(1ULL << config_.bimodalBits, 2);
    chooser_.assign(1ULL << config_.chooserBits, 2); // slight gshare bias
}

std::uint8_t
BranchPredictor::saturate(std::uint8_t counter, bool up)
{
    if (up)
        return counter < 3 ? counter + 1 : 3;
    return counter > 0 ? counter - 1 : 0;
}

bool
BranchPredictor::predictAndUpdate(Addr pc, bool taken)
{
    // Branch PCs are word-ish aligned; drop the low bits for indexing.
    const std::uint64_t pc_bits = pc >> 2;
    const std::uint64_t g_index =
        (pc_bits ^ history_) & (gshare_.size() - 1);
    const std::uint64_t b_index = pc_bits & (bimodal_.size() - 1);
    const std::uint64_t c_index = pc_bits & (chooser_.size() - 1);

    const bool g_pred = gshare_[g_index] >= 2;
    const bool b_pred = bimodal_[b_index] >= 2;
    const bool use_gshare = chooser_[c_index] >= 2;
    const bool prediction = use_gshare ? g_pred : b_pred;

    ++predictions_;
    const bool correct = prediction == taken;
    if (!correct)
        ++mispredictions_;

    // Chooser trains toward the component that was right (only when
    // they disagree).
    if (g_pred != b_pred)
        chooser_[c_index] = saturate(chooser_[c_index], g_pred == taken);
    gshare_[g_index] = saturate(gshare_[g_index], taken);
    bimodal_[b_index] = saturate(bimodal_[b_index], taken);
    history_ = ((history_ << 1) | (taken ? 1 : 0)) &
               ((1ULL << config_.historyBits) - 1);
    return correct;
}

void
BranchPredictor::reset()
{
    std::fill(gshare_.begin(), gshare_.end(), 2);
    std::fill(bimodal_.begin(), bimodal_.end(), 2);
    std::fill(chooser_.begin(), chooser_.end(), 2);
    history_ = 0;
    predictions_ = 0;
    mispredictions_ = 0;
}

double
BranchPredictor::mispredictRatio() const
{
    if (predictions_ == 0)
        return 0.0;
    return static_cast<double>(mispredictions_) /
           static_cast<double>(predictions_);
}

} // namespace mtperf::uarch
