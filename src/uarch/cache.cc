#include "uarch/cache.h"

#include <bit>

#include "common/logging.h"

namespace mtperf::uarch {

Cache::Cache(const CacheConfig &config) : config_(config)
{
    if (config_.lineBytes == 0 ||
        (config_.lineBytes & (config_.lineBytes - 1)) != 0) {
        mtperf_fatal("cache '", config_.name,
                     "': line size must be a power of two");
    }
    if (config_.associativity == 0)
        mtperf_fatal("cache '", config_.name, "': zero associativity");
    const std::uint64_t num_lines = config_.sizeBytes / config_.lineBytes;
    if (num_lines == 0 || num_lines % config_.associativity != 0) {
        mtperf_fatal("cache '", config_.name,
                     "': size must be a multiple of assoc * line size");
    }
    numSets_ = static_cast<std::uint32_t>(num_lines /
                                          config_.associativity);
    if ((numSets_ & (numSets_ - 1)) != 0)
        mtperf_fatal("cache '", config_.name,
                     "': set count must be a power of two");
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(config_.lineBytes)));
    lines_.assign(static_cast<std::size_t>(numSets_) *
                      config_.associativity,
                  Line{});
}

std::uint32_t
Cache::setIndex(Addr line_addr) const
{
    return static_cast<std::uint32_t>(line_addr & (numSets_ - 1));
}

CacheAccessOutcome
Cache::lookupTracked(Addr addr, bool demand)
{
    const Addr line_addr = addr >> lineShift_;
    const std::uint32_t set = setIndex(line_addr);
    Line *base = lines_.data() +
                 static_cast<std::size_t>(set) * config_.associativity;
    ++useClock_;

    CacheAccessOutcome out;
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == line_addr) {
            line.lastUse = useClock_;
            out.hit = true;
            out.lineIndex = set * config_.associativity + w;
            return out;
        }
    }

    // Miss: evict the LRU way.
    Line *victim = base;
    for (std::uint32_t w = 1; w < config_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim->valid) {
        out.evictedValid = true;
        out.evictedLineAddr = victim->tag;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->lastUse = useClock_;
    if (!demand)
        ++prefetchFills_;
    out.lineIndex = static_cast<std::uint32_t>(victim - lines_.data());
    return out;
}

bool
Cache::lookup(Addr addr, bool demand)
{
    return lookupTracked(addr, demand).hit;
}

bool
Cache::access(Addr addr)
{
    ++accesses_;
    const bool hit = lookup(addr, true);
    if (!hit) {
        ++misses_;
        if (config_.nextLinePrefetch) {
            for (std::uint32_t d = 1; d <= config_.prefetchDegree; ++d)
                lookup(addr + d * std::uint64_t(config_.lineBytes),
                       false);
        }
    }
    return hit;
}

CacheAccessOutcome
Cache::accessTracked(Addr addr)
{
    ++accesses_;
    CacheAccessOutcome out = lookupTracked(addr, true);
    if (!out.hit)
        ++misses_;
    return out;
}

bool
Cache::probe(Addr addr) const
{
    const Addr line_addr = addr >> lineShift_;
    const std::uint32_t set = setIndex(line_addr);
    const Line *base = lines_.data() +
                       static_cast<std::size_t>(set) *
                           config_.associativity;
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].tag == line_addr)
            return true;
    }
    return false;
}

void
Cache::fill(Addr addr)
{
    lookup(addr, false);
}

CacheAccessOutcome
Cache::fillTracked(Addr addr)
{
    return lookupTracked(addr, false);
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    useClock_ = 0;
    accesses_ = 0;
    misses_ = 0;
    prefetchFills_ = 0;
}

double
Cache::missRatio() const
{
    if (accesses_ == 0)
        return 0.0;
    return static_cast<double>(misses_) / static_cast<double>(accesses_);
}

} // namespace mtperf::uarch
