/**
 * @file
 * Fundamental types shared by the microarchitecture model.
 */

#ifndef MTPERF_UARCH_TYPES_H_
#define MTPERF_UARCH_TYPES_H_

#include <cstdint>

namespace mtperf::uarch {

/** A byte address in the simulated virtual address space. */
using Addr = std::uint64_t;

/** A cycle timestamp. */
using Cycle = std::uint64_t;

/** Cache line size used throughout the Core-2-like hierarchy. */
inline constexpr Addr kLineBytes = 64;

/** Virtual page size for the TLB models. */
inline constexpr Addr kPageBytes = 4096;

/** Operation classes the timing core distinguishes. */
enum class OpClass : std::uint8_t {
    IntAlu,  //!< single-cycle integer op
    IntMul,  //!< pipelined integer multiply
    FpAdd,   //!< pipelined FP add/sub
    FpMul,   //!< pipelined FP multiply
    FpDiv,   //!< unpipelined FP divide
    Load,    //!< memory read
    Store,   //!< memory write
    Branch,  //!< conditional branch
};

/** One dynamic instruction as the workload generator emits it. */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    Addr pc = 0;              //!< fetch address (drives L1I/ITLB/BP)
    Addr addr = 0;            //!< effective address for Load/Store
    std::uint8_t size = 4;    //!< access size in bytes for Load/Store
    std::uint16_t depDist = 0; //!< distance to the producer op (0 = none)
    bool taken = false;       //!< branch outcome
    bool hasLcp = false;      //!< length-changing prefix in the encoding
    bool storeAddrSlow = false; //!< store address produced late (STA risk)
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_TYPES_H_
