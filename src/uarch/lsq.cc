#include "uarch/lsq.h"

#include "common/logging.h"

namespace mtperf::uarch {

LoadStoreQueue::LoadStoreQueue(const LsqConfig &config) : config_(config)
{
    if (config_.storeBufferEntries == 0)
        mtperf_fatal("LSQ: store buffer must have at least one entry");
    buffer_.assign(config_.storeBufferEntries, StoreEntry{});
}

void
LoadStoreQueue::recordStore(Addr addr, std::uint8_t size, bool addr_slow,
                            std::uint64_t seq)
{
    buffer_[head_] = {addr, size, addr_slow, seq, true};
    head_ = (head_ + 1) % buffer_.size();
}

LoadBlockResult
LoadStoreQueue::checkLoad(Addr addr, std::uint8_t size, std::uint64_t seq)
{
    LoadBlockResult result;
    const Addr load_begin = addr;
    const Addr load_end = addr + size;

    // Scan from the youngest store backwards; the nearest interacting
    // store determines the outcome, matching how the hardware resolves
    // the youngest-older-store dependence.
    for (std::size_t i = 0; i < buffer_.size(); ++i) {
        const std::size_t slot =
            (head_ + buffer_.size() - 1 - i) % buffer_.size();
        const StoreEntry &store = buffer_[slot];
        if (!store.valid || store.seq >= seq)
            continue;
        const std::uint64_t age = seq - store.seq;

        // An unresolved store address blocks every younger load: the
        // load cannot prove independence until the address computes.
        if (store.addrSlow && age <= config_.staWindowOps) {
            result.sta = true;
            result.penalty += config_.staBlockCycles;
            ++staBlocks_;
            break;
        }

        const Addr store_begin = store.addr;
        const Addr store_end = store.addr + store.size;
        const bool disjoint =
            load_end <= store_begin || store_end <= load_begin;
        if (disjoint)
            continue;

        const bool covers = store_begin <= load_begin &&
                            store_end >= load_end;
        if (!covers) {
            // Partial overlap can never forward; the load waits for
            // the store to drain to the cache.
            result.overlap = true;
            result.penalty += config_.overlapBlockCycles;
            ++overlapBlocks_;
        } else if (age <= config_.stdWindowOps) {
            // Full cover but the store data is not produced yet.
            result.std = true;
            result.penalty += config_.stdBlockCycles;
            ++stdBlocks_;
        }
        // Full cover with ready data forwards for free.
        break;
    }
    return result;
}

void
LoadStoreQueue::reset()
{
    for (auto &entry : buffer_)
        entry = StoreEntry{};
    head_ = 0;
    staBlocks_ = 0;
    stdBlocks_ = 0;
    overlapBlocks_ = 0;
}

} // namespace mtperf::uarch
