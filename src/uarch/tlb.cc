#include "uarch/tlb.h"

#include <bit>

#include "common/logging.h"

namespace mtperf::uarch {

Tlb::Tlb(const TlbConfig &config) : config_(config)
{
    if (config_.pageBytes == 0 ||
        (config_.pageBytes & (config_.pageBytes - 1)) != 0) {
        mtperf_fatal("TLB: page size must be a power of two");
    }
    if (config_.associativity == 0 ||
        config_.entries % config_.associativity != 0) {
        mtperf_fatal("TLB: entries must be a multiple of associativity");
    }
    numSets_ = config_.entries / config_.associativity;
    if ((numSets_ & (numSets_ - 1)) != 0)
        mtperf_fatal("TLB: set count must be a power of two");
    pageShift_ = static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(config_.pageBytes)));
    entries_.assign(static_cast<std::size_t>(config_.entries), Entry{});
}

bool
Tlb::access(Addr addr)
{
    ++accesses_;
    ++useClock_;
    const Addr vpn = addr >> pageShift_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(vpn & (numSets_ - 1));
    Entry *base = entries_.data() +
                  static_cast<std::size_t>(set) * config_.associativity;

    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lastUse = useClock_;
            return true;
        }
    }

    ++misses_;
    Entry *victim = base;
    for (std::uint32_t w = 1; w < config_.associativity; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock_;
    return false;
}

void
Tlb::reset()
{
    for (auto &e : entries_)
        e = Entry{};
    useClock_ = 0;
    accesses_ = 0;
    misses_ = 0;
}

TwoLevelDtlb::TwoLevelDtlb(const TlbConfig &l0, const TlbConfig &main)
    : l0_(l0), main_(main)
{
}

DtlbLoadResult
TwoLevelDtlb::translateLoad(Addr addr)
{
    DtlbLoadResult result;
    result.l0Hit = l0_.access(addr);
    if (result.l0Hit) {
        result.mainHit = true; // inclusive: L0 content is in main
        return result;
    }
    result.mainHit = main_.access(addr);
    return result;
}

bool
TwoLevelDtlb::translateStore(Addr addr)
{
    return main_.access(addr);
}

void
TwoLevelDtlb::reset()
{
    l0_.reset();
    main_.reset();
}

} // namespace mtperf::uarch
