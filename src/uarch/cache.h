/**
 * @file
 * A set-associative cache model with true-LRU replacement.
 *
 * The model tracks tags only — no data — because the simulator needs
 * hit/miss behaviour and counts, not contents. An optional next-line
 * prefetcher approximates the Core 2 L2 streamer: on a demand miss it
 * also fills the sequentially next line, so strided workloads expose
 * fewer demand misses than pointer-chasing ones, as on real hardware.
 */

#ifndef MTPERF_UARCH_CACHE_H_
#define MTPERF_UARCH_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "uarch/types.h"

namespace mtperf::uarch {

/** Geometry and behaviour of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t associativity = 8;
    std::uint32_t lineBytes = kLineBytes;
    bool nextLinePrefetch = false;
    /** Lines fetched ahead on a demand miss when prefetching is on. */
    std::uint32_t prefetchDegree = 1;
};

/**
 * Outcome of a tracked cache lookup: which physical line slot was
 * touched or filled, and what (if anything) was displaced. A shared
 * cache uses this to keep per-slot owner bookkeeping.
 */
struct CacheAccessOutcome
{
    bool hit = false;
    std::uint32_t lineIndex = 0; //!< set * associativity + way
    bool evictedValid = false;   //!< a valid line was displaced
    Addr evictedLineAddr = 0;    //!< its line address (addr / lineBytes)
};

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up (and on miss, fill) the line containing @p addr.
     * @return true on hit.
     */
    bool access(Addr addr);

    /**
     * Like access(), but reports the touched slot and any eviction,
     * and never triggers the internal next-line prefetcher — callers
     * that need tracking (the shared L2) run their own streamer.
     */
    CacheAccessOutcome accessTracked(Addr addr);

    /** True if the line containing @p addr is resident (no update). */
    bool probe(Addr addr) const;

    /** Fill the line containing @p addr without counting a demand access. */
    void fill(Addr addr);

    /** Like fill(), but reports the touched slot and any eviction. */
    CacheAccessOutcome fillTracked(Addr addr);

    /** Line address (tag granularity) of @p addr. */
    Addr lineAddrOf(Addr addr) const { return addr >> lineShift_; }

    /** Invalidate all lines and clear statistics. */
    void reset();

    const CacheConfig &config() const { return config_; }
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t prefetchFills() const { return prefetchFills_; }

    /** Demand miss ratio; 0 when no accesses have been made. */
    double missRatio() const;

    std::uint32_t numSets() const { return numSets_; }

  private:
    struct Line
    {
        Addr tag = ~0ULL;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setIndex(Addr line_addr) const;
    bool lookup(Addr addr, bool demand);
    CacheAccessOutcome lookupTracked(Addr addr, bool demand);

    CacheConfig config_;
    std::uint32_t numSets_ = 0;
    std::uint32_t lineShift_ = 0;
    std::vector<Line> lines_; //!< numSets * associativity, set-major
    std::uint64_t useClock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t prefetchFills_ = 0;
};

} // namespace mtperf::uarch

#endif // MTPERF_UARCH_CACHE_H_
