#include "uarch/decoder.h"

namespace mtperf::uarch {

Decoder::Decoder(const DecoderConfig &config) : config_(config)
{
}

Cycle
Decoder::decode(const MicroOp &op)
{
    if (!op.hasLcp)
        return 0;
    ++lcpStalls_;
    return config_.lcpStallCycles;
}

void
Decoder::reset()
{
    lcpStalls_ = 0;
}

} // namespace mtperf::uarch
