#include "uarch/decoder.h"

#include <sstream>

#include "obs/metrics.h"

namespace mtperf::uarch {

namespace {

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

void
registerDecodeCacheInvariant()
{
    static const bool once = [] {
        obs::registerInvariant("decode.cache_accounting", [] {
            const std::uint64_t lookups =
                obs::counter("decode.cache_lookups").value();
            const std::uint64_t hits =
                obs::counter("decode.cache_hits").value();
            const std::uint64_t misses =
                obs::counter("decode.cache_misses").value();
            if (hits + misses == lookups)
                return std::string();
            std::ostringstream os;
            os << "decode.cache_hits=" << hits
               << " + decode.cache_misses=" << misses
               << " != decode.cache_lookups=" << lookups;
            return os.str();
        });
        return true;
    }();
    (void)once;
}

} // namespace

Decoder::Decoder(const DecoderConfig &config) : config_(config)
{
    if (config_.decodeCacheEntries > 0) {
        const std::size_t entries =
            roundUpPow2(config_.decodeCacheEntries);
        cache_.assign(entries, CacheEntry{});
        indexMask_ = entries - 1;
    }
    registerDecodeCacheInvariant();
}

Cycle
Decoder::decode(const MicroOp &op)
{
    static obs::Counter &lookups = obs::counter("decode.cache_lookups");
    static obs::Counter &hits = obs::counter("decode.cache_hits");
    static obs::Counter &misses = obs::counter("decode.cache_misses");

    ++cacheLookups_;
    lookups.increment();

    Cycle bubble;
    if (!cache_.empty()) {
        // Instruction pcs are word-spaced, so drop the two always-zero
        // low bits before direct-mapping.
        CacheEntry &entry = cache_[(op.pc >> 2) & indexMask_];
        if (entry.pc == op.pc && entry.hasLcp == op.hasLcp) {
            ++cacheHits_;
            hits.increment();
            bubble = entry.bubble;
        } else {
            ++cacheMisses_;
            misses.increment();
            bubble = op.hasLcp ? config_.lcpStallCycles : 0;
            entry = {op.pc, op.hasLcp, bubble};
        }
    } else {
        ++cacheMisses_;
        misses.increment();
        bubble = op.hasLcp ? config_.lcpStallCycles : 0;
    }

    // Stall statistics are per dynamic instruction, hit or miss.
    if (op.hasLcp)
        ++lcpStalls_;
    return bubble;
}

void
Decoder::reset()
{
    lcpStalls_ = 0;
    cacheLookups_ = 0;
    cacheHits_ = 0;
    cacheMisses_ = 0;
    if (!cache_.empty())
        cache_.assign(cache_.size(), CacheEntry{});
}

} // namespace mtperf::uarch
