/**
 * @file
 * The shared concurrency layer: a fixed-size thread pool.
 *
 * Every independent loop in the pipeline (suite simulation, CV folds,
 * ensemble bags, leave-one-workload-out rounds) runs through one
 * process-wide pool so thread creation is paid once and oversubscription
 * cannot happen. The contract that makes this safe to sprinkle through
 * the codebase:
 *
 *  - parallelFor(n, body) calls body(0..n-1) exactly once each, in
 *    unspecified order, and returns after every call finished. With a
 *    single thread (or n <= 1, or when already inside a pool task) it
 *    degenerates to the exact serial loop in the calling thread.
 *  - Determinism is the caller's job and the library's discipline:
 *    parallelized loops derive any randomness per index *before*
 *    dispatch (or from index-keyed seeds) and write results into
 *    index-addressed slots, so the output is identical for every
 *    thread count. Tests in tests/test_parallel.cc pin this down.
 *  - Nested parallelFor calls run serially inline rather than
 *    deadlocking, so a parallel learner (BaggedM5) inside a parallel
 *    fold is fine.
 *  - The first exception a body throws is rethrown on the caller once
 *    the loop has drained; unlike the serial path, remaining indices
 *    still run (the loop always completes before rethrowing).
 *
 * The global pool is sized by setGlobalThreadCount() (the CLI's
 * --threads flag) or the MTPERF_THREADS environment variable, falling
 * back to the hardware concurrency.
 */

#ifndef MTPERF_COMMON_PARALLEL_H_
#define MTPERF_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace mtperf {

/**
 * Fixed-size pool of worker threads executing index-range loops.
 * A pool of size N uses N-1 workers plus the calling thread, so
 * ThreadPool(1) owns no threads at all and is purely serial.
 */
class ThreadPool
{
  public:
    /** @param threads total concurrency, including the caller; >= 1. */
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total concurrency (worker threads + the calling thread). */
    std::size_t threadCount() const { return threads_; }

    /**
     * Run body(i) for every i in [0, n), distributing indices
     * dynamically over the pool. Blocks until all calls completed;
     * rethrows the first exception any body raised.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** True when the current thread is executing a pool task. */
    static bool inParallelRegion();

  private:
    struct Job;

    void workerLoop();
    static void runJob(const std::shared_ptr<Job> &job);

    std::size_t threads_;
    std::vector<std::thread> workers_;
    std::deque<std::shared_ptr<Job>> pending_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

/**
 * Map [0, n) through @p fn on @p pool, collecting results in index
 * order. fn's result type must be default-constructible; each result
 * slot is written by exactly one task.
 */
template <typename Fn>
auto
parallelMap(ThreadPool &pool, std::size_t n, Fn &&fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
{
    std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> out(n);
    pool.parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/** max(1, std::thread::hardware_concurrency()). */
std::size_t hardwareThreadCount();

/**
 * The thread count the global pool uses when nobody called
 * setGlobalThreadCount(): the MTPERF_THREADS environment variable if
 * set to a positive integer, otherwise the hardware concurrency.
 */
std::size_t defaultThreadCount();

/**
 * Resize the process-wide pool. @p threads == 0 restores the default
 * (MTPERF_THREADS or hardware concurrency). Not safe to call while a
 * parallel loop is in flight; the CLI calls it once at startup.
 */
void setGlobalThreadCount(std::size_t threads);

/** Current size of the process-wide pool. */
std::size_t globalThreadCount();

/** The lazily created process-wide pool. */
ThreadPool &globalPool();

} // namespace mtperf

#endif // MTPERF_COMMON_PARALLEL_H_
