#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include <chrono>

#include "common/fault.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/thread_info.h"
#include "obs/trace.h"

namespace mtperf {

namespace {

/**
 * Depth of pool tasks on this thread. Nonzero means a parallelFor
 * from here must run inline: the pool's workers may all be busy with
 * (or waiting on) our enclosing loop, so queueing would deadlock.
 */
thread_local int poolTaskDepth = 0;

/**
 * Pool metrics. The queue-depth gauge counts queued job entries (one
 * per helper worker recruited, decremented as workers dequeue); its
 * watermark shows the deepest backlog the run ever built. Task
 * latency is recorded per claimed index — the granularity at which
 * the pool schedules — and only on the pooled path, so the serial
 * degenerate path stays exactly as cheap as a plain loop.
 */
obs::Counter &poolLoops = obs::counter("pool.parallel_loops");
obs::Counter &poolTasks = obs::counter("pool.tasks");
obs::Gauge &poolQueueDepth = obs::gauge("pool.queue_depth");
obs::Histogram &poolTaskMicros = obs::histogram("pool.task_micros");

double
elapsedMicros(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

/**
 * One parallelFor invocation. Indices are claimed with an atomic
 * counter (dynamic scheduling, good for uneven work like tree fits);
 * completion is tracked separately from claiming so the caller only
 * returns once every claimed index has actually finished. The job is
 * shared_ptr-held so a worker that dequeues it after the loop already
 * drained touches valid memory and exits immediately.
 */
struct ThreadPool::Job
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *body = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::exception_ptr error; //!< first exception, guarded by doneMutex
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads)
{
    workers_.reserve(threads_ - 1);
    for (std::size_t i = 0; i + 1 < threads_; ++i) {
        workers_.emplace_back([this, i] {
            obs::setCurrentThreadName("mtperf-worker-" +
                                      std::to_string(i + 1));
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !pending_.empty(); });
            if (stop_)
                return;
            job = pending_.front();
            pending_.pop_front();
        }
        poolQueueDepth.add(-1);
        runJob(job);
    }
}

void
ThreadPool::runJob(const std::shared_ptr<Job> &job)
{
    ++poolTaskDepth;
    while (true) {
        const std::size_t i = job->next.fetch_add(1);
        if (i >= job->n)
            break;
        const auto start = std::chrono::steady_clock::now();
        try {
            MTPERF_FAULT_POINT("pool.task.throw");
            (*job->body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(job->doneMutex);
            if (!job->error)
                job->error = std::current_exception();
        }
        poolTasks.increment();
        poolTaskMicros.record(elapsedMicros(start));
        if (job->completed.fetch_add(1) + 1 == job->n) {
            std::lock_guard<std::mutex> lock(job->doneMutex);
            job->doneCv.notify_all();
        }
    }
    --poolTaskDepth;
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (threads_ <= 1 || n == 1 || poolTaskDepth > 0) {
        // The exact serial code path (also taken for nested loops).
        for (std::size_t i = 0; i < n; ++i) {
            MTPERF_FAULT_POINT("pool.task.throw");
            body(i);
        }
        return;
    }

    obs::ScopedSpan span("pool", "pool.for");
    poolLoops.increment();

    auto job = std::make_shared<Job>();
    job->n = n;
    job->body = &body;

    // One queue entry per worker is enough: each entry drains indices
    // until none remain.
    const std::size_t helpers = std::min(workers_.size(), n - 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t i = 0; i < helpers; ++i)
            pending_.push_back(job);
    }
    poolQueueDepth.addTracked(static_cast<std::int64_t>(helpers));
    for (std::size_t i = 0; i < helpers; ++i)
        wake_.notify_one();

    runJob(job);

    std::unique_lock<std::mutex> lock(job->doneMutex);
    job->doneCv.wait(lock,
                     [&] { return job->completed.load() >= job->n; });
    if (job->error)
        std::rethrow_exception(job->error);
}

bool
ThreadPool::inParallelRegion()
{
    return poolTaskDepth > 0;
}

std::size_t
hardwareThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("MTPERF_THREADS")) {
        char *end = nullptr;
        const long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value > 0)
            return static_cast<std::size_t>(value);
        warn("ignoring invalid MTPERF_THREADS value '", env, "'");
    }
    return hardwareThreadCount();
}

namespace {

std::mutex globalPoolMutex;
std::unique_ptr<ThreadPool> globalPoolInstance;

} // namespace

void
setGlobalThreadCount(std::size_t threads)
{
    const std::size_t count = threads == 0 ? defaultThreadCount() : threads;
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (globalPoolInstance && globalPoolInstance->threadCount() == count)
        return;
    globalPoolInstance = std::make_unique<ThreadPool>(count);
}

std::size_t
globalThreadCount()
{
    return globalPool().threadCount();
}

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex);
    if (!globalPoolInstance)
        globalPoolInstance = std::make_unique<ThreadPool>(
            defaultThreadCount());
    return *globalPoolInstance;
}

} // namespace mtperf
