#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace mtperf {

namespace {

/**
 * Pool workers log concurrently (e.g., per-workload progress lines in
 * a parallel suite run), so the level is atomic and the sink is
 * serialized: each message is formatted off-lock and written as one
 * flush under the mutex, keeping lines intact under contention.
 */
std::atomic<LogLevel> globalLevel{LogLevel::Info};
std::mutex sinkMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::string line;
    line.reserve(msg.size() + 16);
    line += "[";
    line += levelName(level);
    line += "] ";
    line += msg;
    line += "\n";
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::cerr << line;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Error,
               concat("fatal: ", msg, " (", file, ":", line, ")"));
    throw FatalError(msg);
}

} // namespace detail

} // namespace mtperf
