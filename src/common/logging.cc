#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace mtperf {

namespace {

LogLevel globalLevel = LogLevel::Info;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(globalLevel))
        return;
    std::cerr << "[" << levelName(level) << "] " << msg << "\n";
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Error,
               concat("fatal: ", msg, " (", file, ":", line, ")"));
    throw FatalError(msg);
}

} // namespace detail

} // namespace mtperf
