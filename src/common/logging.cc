#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "common/strings.h"
#include "obs/thread_info.h"

namespace mtperf {

namespace {

/**
 * Pool workers log concurrently (e.g., per-workload progress lines in
 * a parallel suite run), so the level is atomic and the sink is
 * serialized: each message is formatted off-lock and written as one
 * flush under the mutex, keeping lines intact under contention.
 */
std::atomic<LogLevel> globalLevel{LogLevel::Info};
std::atomic<LogFormat> globalFormat{LogFormat::Text};
std::mutex sinkMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

/**
 * Microseconds since the first log call. Monotonic (steady_clock), so
 * JSON log lines order and diff correctly even if wall time jumps.
 */
std::int64_t
monotonicMicros()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point start = clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - start)
        .count();
}

void
emit(LogLevel level, const char *component, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::string line;
    if (logFormat() == LogFormat::Json) {
        line.reserve(msg.size() + 96);
        line += "{\"ts_us\":";
        line += std::to_string(monotonicMicros());
        line += ",\"level\":\"";
        line += levelName(level);
        line += "\",\"thread\":";
        line += std::to_string(obs::currentThreadId());
        line += ",\"component\":\"";
        line += jsonEscape(component);
        line += "\",\"msg\":\"";
        line += jsonEscape(msg);
        line += "\"}\n";
    } else {
        line.reserve(msg.size() + 24);
        line += "[";
        line += levelName(level);
        line += "] ";
        if (component[0] != '\0' &&
            std::string_view(component) != "mtperf") {
            line += component;
            line += ": ";
        }
        line += msg;
        line += "\n";
    }
    std::lock_guard<std::mutex> lock(sinkMutex);
    std::cerr << line;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "debug")
        return LogLevel::Debug;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "warn")
        return LogLevel::Warn;
    if (lower == "error")
        return LogLevel::Error;
    throw UsageError("unknown log level '" + name +
                     "' (expected debug, info, warn, or error)");
}

void
setLogFormat(LogFormat format)
{
    globalFormat.store(format, std::memory_order_relaxed);
}

LogFormat
logFormat()
{
    return globalFormat.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    emit(level, "mtperf", msg);
}

void
logMessage(LogLevel level, const char *component, const std::string &msg)
{
    emit(level, component, msg);
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " (" << file << ":" << line << ")\n";
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    logMessage(LogLevel::Error,
               concat("fatal: ", msg, " (", file, ":", line, ")"));
    throw FatalError(msg);
}

} // namespace detail

} // namespace mtperf
