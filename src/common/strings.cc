#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/logging.h"

namespace mtperf {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
formatDouble(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

double
parseDouble(std::string_view text, std::string_view context)
{
    const std::string trimmed = trim(text);
    double value = 0.0;
    const char *first = trimmed.data();
    const char *last = trimmed.data() + trimmed.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
        mtperf_fatal("cannot parse '", trimmed, "' as a number (",
                     context, ")");
    }
    return value;
}

std::uint64_t
parseSize(std::string_view text, std::string_view context)
{
    const std::string trimmed = trim(text);
    std::uint64_t value = 0;
    const char *first = trimmed.data();
    const char *last = trimmed.data() + trimmed.size();
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (trimmed.empty() || ec != std::errc() || ptr != last) {
        mtperf_fatal("cannot parse '", trimmed,
                     "' as a non-negative integer (", context, ")");
    }
    return value;
}

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
padRight(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.append(width - out.size(), ' ');
    return out;
}

std::string
padLeft(std::string_view text, std::size_t width)
{
    std::string out(text);
    if (out.size() < width)
        out.insert(out.begin(), width - out.size(), ' ');
    return out;
}

} // namespace mtperf
