/**
 * @file
 * Minimal CSV reading and writing, with positions and integrity.
 *
 * Supports the subset of CSV the library produces and consumes:
 * comma-separated fields, optional double-quote quoting with embedded
 * commas/quotes, one header row. This is deliberately not a general
 * RFC-4180 implementation (no embedded newlines in fields).
 *
 * Robustness contract:
 *  - every parse error names the source and 1-based line (and column
 *    where one exists), e.g. "data.csv:17:42: unterminated quote";
 *  - lines starting with '#' are comments and are skipped;
 *  - a trailing "#mtperf-footer rows=N crc32=HHHHHHHH" line (written
 *    by writeCsvFile) lets readers detect truncation and bit flips in
 *    otherwise-well-formed text; files without a footer are accepted
 *    (foreign CSVs) but cannot be integrity-checked;
 *  - salvage mode recovers the valid rows instead of failing, and the
 *    table reports how many rows were dropped.
 */

#ifndef MTPERF_COMMON_CSV_H_
#define MTPERF_COMMON_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace mtperf {

/** How readCsv() treats malformed rows and integrity failures. */
struct CsvReadOptions
{
    /**
     * When true, drop malformed rows (and tolerate a bad or missing
     * integrity footer) instead of throwing; drops are counted on the
     * returned table and logged.
     */
    bool salvage = false;
};

/** An in-memory CSV table: a header plus data rows of equal width. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Where the table came from ("<stream>" or a file path). */
    std::string source = "<csv>";

    /** 1-based source line of each row (parallel to rows). */
    std::vector<std::size_t> rowLines;

    /** True when an integrity footer was present and verified. */
    bool footerVerified = false;

    /** Rows dropped in salvage mode. */
    std::size_t droppedRows = 0;

    /** Number of columns (from the header). */
    std::size_t columns() const { return header.size(); }

    /** 1-based source line of row @p r (0 when unknown). */
    std::size_t
    rowLine(std::size_t r) const
    {
        return r < rowLines.size() ? rowLines[r] : 0;
    }

    /**
     * Index of the named column.
     * @throw FatalError if the column is absent.
     */
    std::size_t columnIndex(const std::string &name) const;
};

/** Parse a single CSV line into fields, honoring quoting. */
std::vector<std::string> parseCsvLine(const std::string &line);

/**
 * Parse a single CSV line, reporting errors as "source:line:column".
 */
std::vector<std::string> parseCsvLine(const std::string &line,
                                      const std::string &source,
                                      std::size_t line_no);

/** Quote a field if it needs quoting, else return it unchanged. */
std::string csvEscape(const std::string &field);

/**
 * Read a CSV table from a stream. @p source names the stream in
 * error messages.
 * @throw FatalError on ragged rows, an empty file, or an integrity
 * footer that does not match the content (unless salvaging).
 */
CsvTable readCsv(std::istream &in, const std::string &source = "<csv>",
                 const CsvReadOptions &options = {});

/**
 * Read a CSV table from a file path.
 * @throw FatalError if the file cannot be opened.
 */
CsvTable readCsvFile(const std::string &path,
                     const CsvReadOptions &options = {});

/** Write @p table to a stream (no integrity footer). */
void writeCsv(std::ostream &out, const CsvTable &table);

/**
 * Atomically write @p table to a file with an integrity footer: the
 * file appears complete-with-footer or not at all.
 */
void writeCsvFile(const std::string &path, const CsvTable &table);

} // namespace mtperf

#endif // MTPERF_COMMON_CSV_H_
