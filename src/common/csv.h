/**
 * @file
 * Minimal CSV reading and writing.
 *
 * Supports the subset of CSV the library produces and consumes:
 * comma-separated fields, optional double-quote quoting with embedded
 * commas/quotes, one header row. This is deliberately not a general
 * RFC-4180 implementation (no embedded newlines in fields).
 */

#ifndef MTPERF_COMMON_CSV_H_
#define MTPERF_COMMON_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace mtperf {

/** An in-memory CSV table: a header plus data rows of equal width. */
struct CsvTable
{
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /** Number of columns (from the header). */
    std::size_t columns() const { return header.size(); }

    /**
     * Index of the named column.
     * @throw FatalError if the column is absent.
     */
    std::size_t columnIndex(const std::string &name) const;
};

/** Parse a single CSV line into fields, honoring quoting. */
std::vector<std::string> parseCsvLine(const std::string &line);

/** Quote a field if it needs quoting, else return it unchanged. */
std::string csvEscape(const std::string &field);

/**
 * Read a CSV table from a stream.
 * @throw FatalError on ragged rows or an empty file.
 */
CsvTable readCsv(std::istream &in);

/**
 * Read a CSV table from a file path.
 * @throw FatalError if the file cannot be opened.
 */
CsvTable readCsvFile(const std::string &path);

/** Write @p table to a stream. */
void writeCsv(std::ostream &out, const CsvTable &table);

/** Write @p table to a file, replacing any existing content. */
void writeCsvFile(const std::string &path, const CsvTable &table);

} // namespace mtperf

#endif // MTPERF_COMMON_CSV_H_
