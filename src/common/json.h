/**
 * @file
 * A small strict JSON reader.
 *
 * The repository has long *emitted* JSON (metrics dumps, traces, the
 * serve STATS reply, bench reports) but could not read any back; the
 * declarative workload language made a parser unavoidable. This one
 * is deliberately strict — it exists to validate documents a later
 * pipeline stage will trust:
 *
 *  - standard JSON only: no comments, no trailing commas, no NaN/Inf
 *    literals, exactly one document per input (trailing whitespace is
 *    permitted, trailing content is not);
 *  - duplicate object keys are an error, not a silent last-one-wins;
 *  - numbers remember whether their literal was integral, so schema
 *    code can demand an exact byte count and reject "1024.5" instead
 *    of silently flooring it;
 *  - every error is thrown as FatalError with the source name, line,
 *    column and the JSON path of the enclosing container, e.g.
 *    "specs/mcf.json:7:13: duplicate key 'name' (at phases[0])".
 *
 * Doubles round-trip exactly: jsonNumberText() emits the shortest
 * representation that parses back to the same bits (std::to_chars),
 * and parsing converts with std::from_chars, which is correctly
 * rounded. That is what makes spec serialization bit-identical.
 */

#ifndef MTPERF_COMMON_JSON_H_
#define MTPERF_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mtperf::json {

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    /** Object member, in document order. */
    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    static JsonValue makeNull();
    static JsonValue makeBool(bool value);
    static JsonValue makeNumber(double value);
    static JsonValue makeInteger(std::uint64_t value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::vector<Member> members);

    Type type() const { return type_; }

    /** Human name of @p type ("number", "object", ...). */
    static const char *typeName(Type type);
    const char *typeName() const { return typeName(type_); }

    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @pre isBool(). */
    bool boolean() const;

    /** Numeric value as a double. @pre isNumber(). */
    double number() const;

    /**
     * True when the literal was a sign-free integer that fits an
     * unsigned 64-bit value ("12", not "12.0", "1.2e1" or "-12").
     * Schema code uses this to demand exact counts and byte sizes.
     */
    bool isUnsignedIntegral() const { return integral_; }

    /** Exact integer value. @pre isUnsignedIntegral(). */
    std::uint64_t unsignedIntegral() const;

    /** @pre isString(). */
    const std::string &string() const;

    /** @pre isArray(). */
    const std::vector<JsonValue> &array() const;

    /** Members in document order. @pre isObject(). */
    const std::vector<Member> &members() const;

    /** Member named @p key, or nullptr. @pre isObject(). */
    const JsonValue *find(const std::string &key) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    bool integral_ = false;
    std::uint64_t integer_ = 0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<Member> members_;
};

/**
 * Parse exactly one JSON document from @p text.
 *
 * @p source names the input in error messages (a file path, "<stdin>",
 * "<json>", ...). @throw FatalError on any syntax violation, with
 * "source:line:col:" and the JSON path of the enclosing container.
 */
JsonValue parseJson(std::string_view text,
                    const std::string &source = "<json>");

/**
 * Read @p path (or standard input when @p path is "-") and parse it.
 * @throw FatalError when the file cannot be read or does not parse.
 */
JsonValue parseJsonFile(const std::string &path);

/**
 * The canonical text of a JSON number: the shortest decimal string
 * that converts back to exactly @p value. @throw FatalError for
 * non-finite values (JSON cannot represent them).
 */
std::string jsonNumberText(double value);

} // namespace mtperf::json

#endif // MTPERF_COMMON_JSON_H_
