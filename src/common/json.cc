#include "common/json.h"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace mtperf::json {

// ---------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool value)
{
    JsonValue v;
    v.type_ = Type::Bool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::makeInteger(std::uint64_t value)
{
    JsonValue v;
    v.type_ = Type::Number;
    v.number_ = static_cast<double>(value);
    v.integral_ = true;
    v.integer_ = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.type_ = Type::String;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.type_ = Type::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<Member> members)
{
    JsonValue v;
    v.type_ = Type::Object;
    v.members_ = std::move(members);
    return v;
}

const char *
JsonValue::typeName(Type type)
{
    switch (type) {
    case Type::Null:
        return "null";
    case Type::Bool:
        return "bool";
    case Type::Number:
        return "number";
    case Type::String:
        return "string";
    case Type::Array:
        return "array";
    case Type::Object:
        return "object";
    }
    return "unknown";
}

bool
JsonValue::boolean() const
{
    mtperf_assert(isBool(), "boolean() on a ", typeName());
    return bool_;
}

double
JsonValue::number() const
{
    mtperf_assert(isNumber(), "number() on a ", typeName());
    return number_;
}

std::uint64_t
JsonValue::unsignedIntegral() const
{
    mtperf_assert(integral_, "unsignedIntegral() on a non-integral ",
                  typeName());
    return integer_;
}

const std::string &
JsonValue::string() const
{
    mtperf_assert(isString(), "string() on a ", typeName());
    return string_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    mtperf_assert(isArray(), "array() on a ", typeName());
    return array_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    mtperf_assert(isObject(), "members() on a ", typeName());
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    mtperf_assert(isObject(), "find() on a ", typeName());
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

// ---------------------------------------------------------------
// Parser
// ---------------------------------------------------------------

namespace {

/** Containers deeper than this are rejected (a sane document limit). */
constexpr std::size_t kMaxDepth = 100;

/**
 * Recursive-descent parser over a whole in-memory document. Tracks
 * line/column and the JSON path of the enclosing container so every
 * error names where in the document it happened.
 */
class Parser
{
  public:
    Parser(std::string_view text, const std::string &source)
        : text_(text), source_(source)
    {
    }

    JsonValue
    parseDocument()
    {
        skipWhitespace();
        JsonValue root = parseValue(0);
        skipWhitespace();
        if (pos_ != text_.size())
            fail("trailing content after the JSON document");
        return root;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        std::string where;
        if (!path_.empty()) {
            where = " (at ";
            for (const auto &segment : path_)
                where += segment;
            where += ")";
        }
        mtperf_fatal(source_, ":", line_, ":", column_, ": ", msg,
                     where);
    }

    bool
    atEnd() const
    {
        return pos_ >= text_.size();
    }

    char
    peek() const
    {
        return text_[pos_];
    }

    char
    advance()
    {
        const char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            advance();
        }
    }

    void
    expect(char wanted, const char *what)
    {
        if (atEnd())
            fail(std::string("unexpected end of input, expected ") +
                 what);
        const char got = peek();
        if (got != wanted)
            fail(std::string("expected ") + what + ", got '" + got +
                 "'");
        advance();
    }

    bool
    consumeLiteral(std::string_view literal)
    {
        if (text_.substr(pos_, literal.size()) != literal)
            return false;
        for (std::size_t i = 0; i < literal.size(); ++i)
            advance();
        return true;
    }

    JsonValue
    parseValue(std::size_t depth)
    {
        if (depth > kMaxDepth)
            fail("document nests deeper than " +
                 std::to_string(kMaxDepth) + " levels");
        skipWhitespace();
        if (atEnd())
            fail("unexpected end of input, expected a value");
        const char c = peek();
        switch (c) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return JsonValue::makeString(parseString());
        case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal (expected 'true')");
        case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal (expected 'false')");
        case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            fail("invalid literal (expected 'null')");
        default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            fail(std::string("unexpected character '") + c + "'");
        }
    }

    JsonValue
    parseObject(std::size_t depth)
    {
        expect('{', "'{'");
        std::vector<JsonValue::Member> members;
        std::set<std::string> seen;
        skipWhitespace();
        if (!atEnd() && peek() == '}') {
            advance();
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an object");
            if (peek() != '"')
                fail("object keys must be strings");
            const std::string key = parseString();
            if (!seen.insert(key).second)
                fail("duplicate key '" + key + "'");
            skipWhitespace();
            expect(':', "':' after object key");
            path_.push_back(path_.empty() ? key : "." + key);
            members.emplace_back(key, parseValue(depth + 1));
            path_.pop_back();
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an object");
            const char c = advance();
            if (c == '}')
                break;
            if (c != ',')
                fail(std::string("expected ',' or '}' in object, "
                                 "got '") +
                     c + "'");
        }
        return JsonValue::makeObject(std::move(members));
    }

    JsonValue
    parseArray(std::size_t depth)
    {
        expect('[', "'['");
        std::vector<JsonValue> items;
        skipWhitespace();
        if (!atEnd() && peek() == ']') {
            advance();
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            path_.push_back("[" + std::to_string(items.size()) + "]");
            items.push_back(parseValue(depth + 1));
            path_.pop_back();
            skipWhitespace();
            if (atEnd())
                fail("unexpected end of input inside an array");
            const char c = advance();
            if (c == ']')
                break;
            if (c != ',')
                fail(std::string("expected ',' or ']' in array, "
                                 "got '") +
                     c + "'");
        }
        return JsonValue::makeArray(std::move(items));
    }

    std::string
    parseString()
    {
        expect('"', "'\"'");
        std::string out;
        while (true) {
            if (atEnd())
                fail("unterminated string");
            const char c = advance();
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (atEnd())
                fail("unterminated escape sequence");
            const char esc = advance();
            switch (esc) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u':
                appendUnicodeEscape(out);
                break;
            default:
                fail(std::string("invalid escape '\\") + esc + "'");
            }
        }
        return out;
    }

    unsigned
    parseHex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                fail("unterminated \\u escape");
            const char c = advance();
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("invalid hex digit in \\u escape");
        }
        return value;
    }

    void
    appendUnicodeEscape(std::string &out)
    {
        unsigned code = parseHex4();
        if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (atEnd() || peek() != '\\')
                fail("high surrogate without a following \\u escape");
            advance();
            if (atEnd() || peek() != 'u')
                fail("high surrogate without a following \\u escape");
            advance();
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
        }
        // UTF-8 encode.
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (peek() == '-') {
            negative = true;
            advance();
        }
        // Integer part: "0" or [1-9][0-9]*.
        if (atEnd() || peek() < '0' || peek() > '9')
            fail("invalid number: missing digits");
        if (peek() == '0') {
            advance();
            if (!atEnd() && peek() >= '0' && peek() <= '9')
                fail("invalid number: leading zero");
        } else {
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && peek() == '.') {
            integral = false;
            advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number: missing fraction digits");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-'))
                advance();
            if (atEnd() || peek() < '0' || peek() > '9')
                fail("invalid number: missing exponent digits");
            while (!atEnd() && peek() >= '0' && peek() <= '9')
                advance();
        }
        const std::string_view token =
            text_.substr(start, pos_ - start);

        double value = 0.0;
        const auto [ptr, ec] = std::from_chars(
            token.data(), token.data() + token.size(), value);
        if (ec != std::errc() || ptr != token.data() + token.size())
            fail("invalid number '" + std::string(token) + "'");
        if (!std::isfinite(value))
            fail("number '" + std::string(token) +
                 "' overflows a double");

        if (integral && !negative) {
            std::uint64_t exact = 0;
            const auto [iptr, iec] = std::from_chars(
                token.data(), token.data() + token.size(), exact);
            if (iec == std::errc() &&
                iptr == token.data() + token.size())
                return JsonValue::makeInteger(exact);
        }
        return JsonValue::makeNumber(value);
    }

    std::string_view text_;
    std::string source_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
    std::vector<std::string> path_;
};

} // namespace

JsonValue
parseJson(std::string_view text, const std::string &source)
{
    Parser parser(text, source);
    return parser.parseDocument();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ostringstream content;
    if (path == "-") {
        content << std::cin.rdbuf();
        return parseJson(content.str(), "<stdin>");
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        mtperf_fatal("cannot open JSON file ", path);
    content << in.rdbuf();
    if (in.bad())
        mtperf_fatal("error reading JSON file ", path);
    return parseJson(content.str(), path);
}

std::string
jsonNumberText(double value)
{
    if (!std::isfinite(value))
        mtperf_fatal("JSON cannot represent non-finite number");
    char buffer[64];
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    mtperf_assert(ec == std::errc(), "to_chars failed");
    return std::string(buffer, ptr);
}

} // namespace mtperf::json
