/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (workload synthesis, fold
 * shuffling, learner initialization) draw from Rng so that every
 * experiment is reproducible from a single seed. The generator is
 * xoshiro256**, which is fast, has a 256-bit state and passes BigCrush.
 *
 * Rng instances are plain mutable state — there are no globals and no
 * internal locking — so an instance must never be shared across pool
 * tasks. Parallel loops draw everything they need before dispatch or
 * give each task its own seed-derived instance (see common/parallel.h).
 */

#ifndef MTPERF_COMMON_RNG_H_
#define MTPERF_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace mtperf {

/**
 * A seedable xoshiro256** generator with the distribution helpers the
 * library needs. Satisfies the UniformRandomBitGenerator concept so it
 * can also be handed to <random> and <algorithm> facilities.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed the generator, discarding all previous state. */
    void seed(std::uint64_t seed);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential with rate @p lambda. @pre lambda > 0. */
    double exponential(double lambda);

    /**
     * Geometric number of failures before the first success,
     * success probability @p p in (0, 1].
     */
    std::uint64_t geometric(double p);

    /**
     * Zipf-distributed integer in [0, n) with exponent @p s, drawn by
     * inversion over a precomputed CDF would be per-call expensive, so
     * this uses rejection-inversion (Hormann & Derflinger) which is
     * O(1) per draw.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Fisher-Yates shuffle of @p v. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(static_cast<std::uint64_t>(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * A Zipf(n, s) sampler with the rejection-inversion constants
 * precomputed at construction. Rng::zipf(n, s) recomputes four
 * transcendental constants on every draw; callers that sample the
 * same distribution repeatedly (the workload generator draws millions
 * of addresses per section from fixed footprints) construct one of
 * these per (n, s) instead. sample() consumes the same uniform stream
 * and produces bit-identical values to Rng::zipf — Rng::zipf is
 * implemented on top of it.
 */
class ZipfSampler
{
  public:
    /** Trivial sampler over a single value (always returns 0). */
    ZipfSampler() = default;

    /** Precompute constants for Zipf over [0, n) with exponent s. */
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one value in [0, n), consuming uniforms from @p rng. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t n() const { return n_; }
    double s() const { return s_; }

  private:
    std::uint64_t n_ = 1;
    double s_ = 0.0;
    double hX1_ = 0.0;  //!< h_integral(1.5) - 1
    double d_ = 0.0;    //!< h_integral(0.5)
    double span_ = 0.0; //!< h_integral(n + 0.5) - d
};

} // namespace mtperf

#endif // MTPERF_COMMON_RNG_H_
