#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/strings.h"

namespace mtperf {

namespace {

constexpr const char *kFooterPrefix = "#mtperf-footer ";

/** "source:line:" or "source:line:column:" error location prefix. */
std::string
at(const std::string &source, std::size_t line_no, std::size_t column = 0)
{
    std::string where = source + ":" + std::to_string(line_no);
    if (column != 0)
        where += ":" + std::to_string(column);
    return where + ": ";
}

/**
 * Parse and check a "#mtperf-footer rows=N crc32=HHHHHHHH" line
 * against the observed content. @return an error message, empty on
 * success.
 */
std::string
checkFooter(const std::string &line, std::size_t rows_seen,
            std::uint32_t content_crc)
{
    std::istringstream fields(line.substr(std::string(kFooterPrefix).size()));
    std::string rows_word, crc_word;
    if (!(fields >> rows_word >> crc_word) ||
        !startsWith(rows_word, "rows=") || !startsWith(crc_word, "crc32=")) {
        return "malformed integrity footer";
    }
    std::uint64_t rows = 0;
    try {
        rows = parseSize(rows_word.substr(5), "footer row count");
    } catch (const FatalError &) {
        return "malformed integrity footer row count";
    }
    std::uint32_t crc = 0;
    if (!parseCrc32Hex(crc_word.substr(6), crc))
        return "malformed integrity footer checksum";
    if (rows != rows_seen) {
        return "integrity footer expects " + std::to_string(rows) +
               " rows but the file has " + std::to_string(rows_seen) +
               " (truncated or corrupt)";
    }
    if (crc != content_crc) {
        return "integrity checksum mismatch (expected " + crc32Hex(crc) +
               ", content hashes to " + crc32Hex(content_crc) +
               "; the file is corrupt)";
    }
    return {};
}

} // namespace

std::size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    mtperf_fatal(source, ": CSV has no column named '", name, "'");
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    return parseCsvLine(line, "<csv>", 0);
}

std::vector<std::string>
parseCsvLine(const std::string &line, const std::string &source,
             std::size_t line_no)
{
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    std::size_t quote_column = 0;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
            quote_column = i + 1;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
        } else if (c != '\r') {
            field.push_back(c);
        }
    }
    if (in_quotes) {
        mtperf_fatal(at(source, line_no, quote_column),
                     "unterminated quote in CSV line");
    }
    fields.push_back(std::move(field));
    return fields;
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

CsvTable
readCsv(std::istream &in, const std::string &source,
        const CsvReadOptions &options)
{
    CsvTable table;
    table.source = source;
    std::string line;
    bool have_header = false;
    bool footer_seen = false;
    std::size_t line_no = 0;
    Crc32 content_crc;
    while (std::getline(in, line)) {
        ++line_no;
        if (startsWith(line, kFooterPrefix)) {
            footer_seen = true;
            const std::string error =
                checkFooter(line, table.rows.size(), content_crc.value());
            if (error.empty()) {
                table.footerVerified = true;
            } else if (options.salvage) {
                warn(at(source, line_no), error, " (salvaging)");
            } else {
                mtperf_fatal(at(source, line_no), error);
            }
            continue;
        }
        // The footer checksum covers every content line, including
        // comments and blanks, exactly as written ('\n' endings).
        content_crc.update(line);
        content_crc.update("\n", 1);
        if (line.empty() || line == "\r" || line[0] == '#')
            continue;
        std::vector<std::string> fields;
        try {
            fields = parseCsvLine(line, source, line_no);
        } catch (const FatalError &) {
            if (!options.salvage)
                throw;
            ++table.droppedRows;
            continue;
        }
        if (!have_header) {
            table.header = std::move(fields);
            have_header = true;
        } else {
            if (fields.size() != table.header.size()) {
                if (options.salvage) {
                    ++table.droppedRows;
                    continue;
                }
                mtperf_fatal(at(source, line_no),
                             "ragged CSV row: expected ",
                             table.header.size(), " fields, got ",
                             fields.size());
            }
            table.rows.push_back(std::move(fields));
            table.rowLines.push_back(line_no);
        }
    }
    if (!have_header)
        mtperf_fatal(source, ": empty CSV input");
    if (!footer_seen) {
        // Either a foreign CSV or an mtperf CSV whose tail (rows and
        // footer) was cut off -- the two are indistinguishable, so
        // accept the data but say that completeness is unverified.
        warn(source, ": no integrity footer; truncation would be "
             "undetectable");
    }
    if (table.droppedRows > 0) {
        warn(source, ": salvage dropped ", table.droppedRows,
             " malformed CSV row", table.droppedRows == 1 ? "" : "s");
    }
    return table;
}

CsvTable
readCsvFile(const std::string &path, const CsvReadOptions &options)
{
    MTPERF_FAULT_POINT("fs.open.fail");
    std::ifstream in(path);
    if (!in)
        mtperf_fatal("cannot open CSV file: ", path);
    return readCsv(in, path, options);
}

void
writeCsv(std::ostream &out, const CsvTable &table)
{
    auto write_row = [&out](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << csvEscape(row[i]);
        }
        out << '\n';
    };
    write_row(table.header);
    for (const auto &row : table.rows)
        write_row(row);
}

void
writeCsvFile(const std::string &path, const CsvTable &table)
{
    std::ostringstream content;
    writeCsv(content, table);
    MTPERF_FAULT_POINT("csv.write.fail");
    const std::string text = content.str();
    atomicWriteFile(path, [&](std::ostream &out) {
        out << text << kFooterPrefix << "rows=" << table.rows.size()
            << " crc32=" << crc32Hex(crc32(text)) << "\n";
    });
}

} // namespace mtperf
