#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace mtperf {

std::size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name)
            return i;
    }
    mtperf_fatal("CSV has no column named '", name, "'");
}

std::vector<std::string>
parseCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field.push_back('"');
                    ++i;
                } else {
                    in_quotes = false;
                }
            } else {
                field.push_back(c);
            }
        } else if (c == '"') {
            in_quotes = true;
        } else if (c == ',') {
            fields.push_back(std::move(field));
            field.clear();
        } else if (c != '\r') {
            field.push_back(c);
        }
    }
    if (in_quotes)
        mtperf_fatal("unterminated quote in CSV line: ", line);
    fields.push_back(std::move(field));
    return fields;
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

CsvTable
readCsv(std::istream &in)
{
    CsvTable table;
    std::string line;
    bool have_header = false;
    while (std::getline(in, line)) {
        if (line.empty() || line == "\r")
            continue;
        auto fields = parseCsvLine(line);
        if (!have_header) {
            table.header = std::move(fields);
            have_header = true;
        } else {
            if (fields.size() != table.header.size()) {
                mtperf_fatal("ragged CSV row: expected ",
                             table.header.size(), " fields, got ",
                             fields.size());
            }
            table.rows.push_back(std::move(fields));
        }
    }
    if (!have_header)
        mtperf_fatal("empty CSV input");
    return table;
}

CsvTable
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        mtperf_fatal("cannot open CSV file: ", path);
    return readCsv(in);
}

void
writeCsv(std::ostream &out, const CsvTable &table)
{
    auto write_row = [&out](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                out << ',';
            out << csvEscape(row[i]);
        }
        out << '\n';
    };
    write_row(table.header);
    for (const auto &row : table.rows)
        write_row(row);
}

void
writeCsvFile(const std::string &path, const CsvTable &table)
{
    std::ofstream out(path);
    if (!out)
        mtperf_fatal("cannot open CSV file for writing: ", path);
    writeCsv(out, table);
}

} // namespace mtperf
