/**
 * @file
 * RAII socket primitives for the serving layer.
 *
 * Thin, exception-reporting wrappers over the POSIX socket API: an
 * owning file-descriptor handle, TCP and Unix-domain listeners and
 * connectors, and read/write helpers with the semantics the framed
 * protocol needs (all-or-nothing writes, EOF-aware full reads). All
 * errors surface as FatalError carrying errno text, so the CLI's
 * exit-code contract treats a refused connection like any other bad
 * environment (exit 3), never as a crash.
 *
 * Addresses are written as one string:
 *
 *     HOST:PORT    e.g.  "127.0.0.1:7077"
 *     HOST         TCP with a caller-supplied default port
 *     unix:PATH    e.g.  "unix:/tmp/mtperf.sock"
 *
 * Only numeric IPv4 literals and "localhost" are resolved; serving is
 * a loopback/LAN tool, not a name-resolution exercise.
 */

#ifndef MTPERF_COMMON_SOCKET_H_
#define MTPERF_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mtperf::net {

/** Move-only owning wrapper of a socket file descriptor. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close the descriptor now (idempotent). */
    void close();

    /**
     * shutdown(SHUT_RDWR) without closing: unblocks any thread parked
     * in a read on this socket. Errors are ignored (the peer may
     * already be gone).
     */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** Where a server listens or a client connects. */
struct Endpoint
{
    bool unixDomain = false;
    std::string host;        //!< TCP host (numeric IPv4 or localhost)
    std::uint16_t port = 0;  //!< TCP port
    std::string path;        //!< Unix-domain socket path

    /** Printable form ("127.0.0.1:7077" or "unix:/tmp/x.sock"). */
    std::string display() const;
};

/**
 * Parse an address string (see the file comment for the grammar).
 * @throw UsageError on a malformed address or out-of-range port.
 */
Endpoint parseEndpoint(const std::string &text,
                       std::uint16_t default_port);

/**
 * Bind and listen on a TCP endpoint. Port 0 picks an ephemeral port;
 * @p bound_port (if non-null) receives the actual port either way.
 * @throw FatalError when binding fails.
 */
Socket listenTcp(const std::string &host, std::uint16_t port,
                 std::uint16_t *bound_port);

/**
 * Bind and listen on a Unix-domain socket, removing any stale socket
 * file at @p path first. @throw FatalError when binding fails.
 */
Socket listenUnix(const std::string &path);

/** Accept one connection. @throw FatalError on accept failure. */
Socket acceptOn(const Socket &listener);

/**
 * Connect to @p endpoint. @p timeout_ms > 0 also becomes the socket's
 * receive timeout, so a hung server surfaces as a FatalError instead
 * of a stuck client. @throw FatalError when the connection fails.
 */
Socket connectTo(const Endpoint &endpoint, int timeout_ms);

/**
 * Poll @p fd for readability. @return true when readable, false on
 * timeout. @throw FatalError on poll failure.
 */
bool waitReadable(int fd, int timeout_ms);

/**
 * Write exactly @p n bytes (retrying short writes, SIGPIPE
 * suppressed). @throw FatalError when the peer is gone.
 */
void writeAll(int fd, const void *data, std::size_t n);

/**
 * Read exactly @p n bytes. @return false on a clean EOF before the
 * first byte (peer closed between frames); @throw FatalError on an
 * error, a timeout, or EOF mid-buffer (a truncated frame).
 */
bool readFully(int fd, void *data, std::size_t n);

// ------------------------------------------------------------------
// Non-blocking / readiness plumbing (the event-loop substrate)
// ------------------------------------------------------------------

/**
 * Poll @p fd for writability. @return true when writable, false on
 * timeout. @throw FatalError on poll failure.
 */
bool waitWritable(int fd, int timeout_ms);

/** Put @p fd into non-blocking mode. @throw FatalError. */
void setNonBlocking(int fd);

/**
 * Accept one connection without blocking (the listener must be
 * non-blocking). @return an invalid Socket when nothing is pending;
 * @throw FatalError on a real accept failure. Transient per-connection
 * failures (ECONNABORTED) read as "nothing pending".
 */
Socket acceptNonBlocking(const Socket &listener);

/**
 * Read up to @p n bytes from a non-blocking socket. @return the byte
 * count (0 when nothing is readable right now); a clean peer close
 * sets @p *eof instead. @throw FatalError on a socket error.
 */
std::size_t readSome(int fd, void *data, std::size_t n, bool *eof);

/**
 * Write up to @p n bytes to a non-blocking socket, SIGPIPE
 * suppressed. @return bytes accepted (0 when the kernel buffer is
 * full). @throw FatalError when the peer is gone.
 */
std::size_t writeSome(int fd, const void *data, std::size_t n);

/** One readiness report from Poller::wait. */
struct PollEvent
{
    std::uint64_t tag = 0; //!< the tag the fd was registered under
    bool readable = false;
    bool writable = false;
    /** Peer hung up or the fd errored; treat as readable-to-EOF. */
    bool hangup = false;
};

/**
 * RAII epoll instance: many fds multiplexed under caller-chosen u64
 * tags, level-triggered (a partial read leaves the fd ready, so no
 * drain-to-EAGAIN discipline is forced on callers). All methods
 * throw FatalError on kernel refusal.
 */
class Poller
{
  public:
    Poller();
    ~Poller();

    Poller(Poller &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Poller &operator=(Poller &&) = delete;
    Poller(const Poller &) = delete;
    Poller &operator=(const Poller &) = delete;

    /** Register @p fd under @p tag, watching EPOLLIN (+EPOLLOUT). */
    void add(int fd, std::uint64_t tag, bool want_write = false);

    /** Change the EPOLLOUT interest of a registered fd. */
    void modify(int fd, std::uint64_t tag, bool want_write);

    /** Deregister @p fd (must still be open). */
    void remove(int fd);

    /**
     * Wait up to @p timeout_ms (-1 = forever) and fill @p events.
     * @return the number of events (0 on timeout).
     */
    std::size_t wait(std::vector<PollEvent> &events, int timeout_ms);

  private:
    int fd_ = -1;
};

/**
 * Eventfd-based cross-thread wakeup: signal() from any thread makes
 * the fd readable so a Poller blocked in wait() returns; drain()
 * consumes the pending count. Signals coalesce.
 */
class WakeupFd
{
  public:
    WakeupFd();
    ~WakeupFd();

    WakeupFd(const WakeupFd &) = delete;
    WakeupFd &operator=(const WakeupFd &) = delete;

    int fd() const { return fd_; }
    void signal();
    void drain();

  private:
    int fd_ = -1;
};

} // namespace mtperf::net

#endif // MTPERF_COMMON_SOCKET_H_
