/**
 * @file
 * Crash-safe file writes: write a temp file, flush, then rename.
 *
 * Every artifact a later pipeline stage trusts (traces, trained
 * models, dataset CSVs, checkpoints) is written through this class so
 * that a process killed mid-write can never leave a half-written file
 * at the final path: either the complete new content is renamed into
 * place on commit(), or the old content (or absence) survives
 * untouched. The temp file lives next to the target (same directory,
 * ".tmp" suffix) so the rename stays within one filesystem.
 */

#ifndef MTPERF_COMMON_ATOMIC_FILE_H_
#define MTPERF_COMMON_ATOMIC_FILE_H_

#include <fstream>
#include <functional>
#include <string>

namespace mtperf {

/**
 * An output file that only appears at its final path on commit().
 * Destruction without commit() (e.g. during exception unwind)
 * discards the temp file and leaves the target untouched.
 */
class AtomicFile
{
  public:
    /**
     * Open @p path's temp sibling for writing.
     * @throw FatalError when the temp file cannot be opened.
     */
    explicit AtomicFile(const std::string &path, bool binary = false);
    ~AtomicFile();

    AtomicFile(const AtomicFile &) = delete;
    AtomicFile &operator=(const AtomicFile &) = delete;

    /** The stream to write content to. */
    std::ofstream &stream() { return out_; }

    const std::string &path() const { return path_; }
    const std::string &tempPath() const { return temp_; }

    /**
     * Flush, close and rename the temp file over the target.
     * @throw FatalError when any step fails (the temp is removed and
     * the target stays untouched).
     */
    void commit();

    /** Close and delete the temp file; the target stays untouched. */
    void discard();

  private:
    std::string path_;
    std::string temp_;
    std::ofstream out_;
    bool done_ = false;
};

/**
 * Convenience wrapper: run @p writer against a temp-file stream, then
 * commit. Any exception from @p writer discards the temp file first.
 */
void atomicWriteFile(const std::string &path,
                     const std::function<void(std::ostream &)> &writer,
                     bool binary = false);

} // namespace mtperf

#endif // MTPERF_COMMON_ATOMIC_FILE_H_
