#include "common/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/strings.h"

namespace mtperf::fault {

namespace detail {
std::atomic<bool> armed{false};
} // namespace detail

namespace {

struct Site
{
    double prob = 1.0;
    std::uint64_t maxTriggers = UINT64_MAX;
    std::uint64_t visits = 0;
    std::uint64_t triggered = 0;
};

std::mutex registryMutex;
std::map<std::string, Site> registry;
std::uint64_t faultSeed = 0;

std::uint64_t
fnv1a(std::string_view text)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (char c : text)
        hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    return hash;
}

/** splitmix64: a well-mixed pure function of its input. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

void
configure(const std::string &spec, std::uint64_t seed)
{
    std::map<std::string, Site> parsed;
    for (const std::string &entry : split(trim(spec), ',')) {
        const std::string item = trim(entry);
        if (item.empty())
            continue;
        const auto fields = split(item, ':');
        if (fields.size() > 3 || trim(fields[0]).empty()) {
            throw UsageError("bad fault spec '" + item +
                             "' (want site[:prob[:max]])");
        }
        Site site;
        try {
            if (fields.size() >= 2) {
                site.prob = parseDouble(
                    fields[1], "fault probability in '" + item + "'");
            }
            if (fields.size() == 3) {
                site.maxTriggers = parseSize(
                    fields[2], "fault trigger budget in '" + item + "'");
            }
        } catch (const FatalError &e) {
            throw UsageError(e.what());
        }
        if (site.prob < 0.0 || site.prob > 1.0) {
            throw UsageError("fault probability out of [0,1] in '" +
                             item + "'");
        }
        parsed[trim(fields[0])] = site;
    }

    std::lock_guard<std::mutex> lock(registryMutex);
    registry = std::move(parsed);
    faultSeed = seed;
    detail::armed.store(!registry.empty(), std::memory_order_relaxed);
}

void
configureFromEnv()
{
    const char *spec = std::getenv("MTPERF_FAULTS");
    if (spec == nullptr || *spec == '\0')
        return;
    std::uint64_t seed = 0;
    if (const char *seed_env = std::getenv("MTPERF_FAULT_SEED"))
        seed = parseSize(seed_env, "MTPERF_FAULT_SEED");
    configure(spec, seed);
}

void
clear()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    registry.clear();
    detail::armed.store(false, std::memory_order_relaxed);
}

bool
shouldFail(const char *site)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    const auto it = registry.find(site);
    if (it == registry.end())
        return false;
    Site &s = it->second;
    const std::uint64_t visit = s.visits++;
    if (s.triggered >= s.maxTriggers)
        return false;
    bool fire;
    if (s.prob >= 1.0) {
        fire = true;
    } else if (s.prob <= 0.0) {
        fire = false;
    } else {
        // A pure function of (seed, site, visit index): the same spec
        // reproduces the same failure schedule in every run.
        const std::uint64_t h = mix(faultSeed ^ fnv1a(site) ^
                                    (visit * 0x9E3779B97F4A7C15ULL));
        fire = static_cast<double>(h >> 11) * 0x1.0p-53 < s.prob;
    }
    if (fire)
        ++s.triggered;
    return fire;
}

std::uint64_t
visits(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    const auto it = registry.find(site);
    return it == registry.end() ? 0 : it->second.visits;
}

std::uint64_t
triggered(const std::string &site)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    const auto it = registry.find(site);
    return it == registry.end() ? 0 : it->second.triggered;
}

std::vector<std::string>
activeSites()
{
    std::lock_guard<std::mutex> lock(registryMutex);
    std::vector<std::string> names;
    names.reserve(registry.size());
    for (const auto &[name, site] : registry)
        names.push_back(name);
    return names;
}

} // namespace mtperf::fault
