#include "common/checksum.h"

#include <array>

namespace mtperf {

namespace {

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t n)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < n; ++i)
        c = kTable[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
crc32Hex(std::uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[i] = digits[crc & 0xFu];
        crc >>= 4;
    }
    return out;
}

bool
parseCrc32Hex(std::string_view text, std::uint32_t &out)
{
    if (text.size() != 8)
        return false;
    std::uint32_t value = 0;
    for (char c : text) {
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            value |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return false;
    }
    out = value;
    return true;
}

} // namespace mtperf
