/**
 * @file
 * CRC32 (IEEE 802.3, polynomial 0xEDB88320) integrity checksums.
 *
 * Every persistent artifact the pipeline writes (binary traces, model
 * files, dataset CSVs, checkpoints) carries a CRC32 so that readers
 * can distinguish "file ends here by design" from "file was truncated
 * or bit-flipped". CRC32 detects all single-bit errors and all burst
 * errors up to 32 bits, which is exactly the corruption model the
 * corruption-corpus tests rehearse.
 */

#ifndef MTPERF_COMMON_CHECKSUM_H_
#define MTPERF_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mtperf {

/** Continue a CRC32 over @p n bytes at @p data from prior value @p crc. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t n);

/** One-shot CRC32 of a byte range. */
inline std::uint32_t
crc32(const void *data, std::size_t n)
{
    return crc32Update(0, data, n);
}

/** One-shot CRC32 of a string's bytes. */
inline std::uint32_t
crc32(std::string_view text)
{
    return crc32Update(0, text.data(), text.size());
}

/** Fixed-width lower-case hex rendering ("0badf00d"). */
std::string crc32Hex(std::uint32_t crc);

/**
 * Parse crc32Hex() output back. @return false if @p text is not an
 * 8-digit hex word.
 */
bool parseCrc32Hex(std::string_view text, std::uint32_t &out);

/** Incremental CRC32 accumulator for streaming writers. */
class Crc32
{
  public:
    void
    update(const void *data, std::size_t n)
    {
        crc_ = crc32Update(crc_, data, n);
    }

    void update(std::string_view text) { update(text.data(), text.size()); }

    std::uint32_t value() const { return crc_; }
    std::string hex() const { return crc32Hex(crc_); }

  private:
    std::uint32_t crc_ = 0;
};

} // namespace mtperf

#endif // MTPERF_COMMON_CHECKSUM_H_
