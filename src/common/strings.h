/**
 * @file
 * Small string helpers shared across the library.
 */

#ifndef MTPERF_COMMON_STRINGS_H_
#define MTPERF_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mtperf {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/**
 * Format a double the way a report wants it: fixed with @p digits
 * decimals, no trailing spaces.
 */
std::string formatDouble(double value, int digits);

/** Parse a double, throwing FatalError with context on failure. */
double parseDouble(std::string_view text, std::string_view context);

/**
 * Parse a non-negative integer. Unlike parseDouble(), this rejects
 * signs, fractions and values that overflow 64 bits, so "--threads -1"
 * cannot silently wrap to a huge count.
 * @throw FatalError with context on failure.
 */
std::uint64_t parseSize(std::string_view text, std::string_view context);

/**
 * Escape @p text for inclusion inside a JSON string literal (quotes,
 * backslashes, and control characters; no surrounding quotes).
 */
std::string jsonEscape(std::string_view text);

/** Right-pad @p text with spaces to at least @p width characters. */
std::string padRight(std::string_view text, std::size_t width);

/** Left-pad @p text with spaces to at least @p width characters. */
std::string padLeft(std::string_view text, std::size_t width);

} // namespace mtperf

#endif // MTPERF_COMMON_STRINGS_H_
