#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/strings.h"

namespace mtperf::net {

namespace {

[[noreturn]] void
failErrno(const std::string &what)
{
    mtperf_fatal(what, ": ", std::strerror(errno));
}

/** Resolve a numeric IPv4 literal or "localhost". */
in_addr
resolveHost(const std::string &host)
{
    in_addr addr{};
    const std::string name = host == "localhost" ? "127.0.0.1" : host;
    if (inet_pton(AF_INET, name.c_str(), &addr) != 1) {
        mtperf_fatal("cannot resolve host '", host,
                     "' (numeric IPv4 or localhost only)");
    }
    return addr;
}

sockaddr_in
tcpAddress(const std::string &host, std::uint16_t port)
{
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr = resolveHost(host);
    sa.sin_port = htons(port);
    return sa;
}

sockaddr_un
unixAddress(const std::string &path)
{
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    if (path.size() + 1 > sizeof(sa.sun_path))
        mtperf_fatal("unix socket path too long: ", path);
    std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
    return sa;
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

std::string
Endpoint::display() const
{
    if (unixDomain)
        return "unix:" + path;
    return host + ":" + std::to_string(port);
}

Endpoint
parseEndpoint(const std::string &text, std::uint16_t default_port)
{
    Endpoint ep;
    const std::string addr = trim(text);
    if (addr.empty())
        throw UsageError("empty listen/connect address");
    if (startsWith(addr, "unix:")) {
        ep.unixDomain = true;
        ep.path = addr.substr(5);
        if (ep.path.empty())
            throw UsageError("empty unix socket path in '" + addr + "'");
        return ep;
    }
    const auto colon = addr.rfind(':');
    if (colon == std::string::npos) {
        ep.host = addr;
        ep.port = default_port;
        return ep;
    }
    ep.host = addr.substr(0, colon);
    const std::string port_text = addr.substr(colon + 1);
    std::uint64_t port = 0;
    try {
        port = parseSize(port_text, "port in '" + addr + "'");
    } catch (const FatalError &e) {
        throw UsageError(e.what());
    }
    if (ep.host.empty() || port > 65535) {
        throw UsageError("bad address '" + addr +
                         "' (want HOST[:PORT] or unix:PATH, "
                         "port in [0,65535])");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
}

Socket
listenTcp(const std::string &host, std::uint16_t port,
          std::uint16_t *bound_port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket()");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sa = tcpAddress(host, port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&sa),
               sizeof(sa)) != 0) {
        failErrno("cannot bind " + host + ":" + std::to_string(port));
    }
    if (::listen(sock.fd(), 64) != 0)
        failErrno("listen()");
    if (bound_port != nullptr) {
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        if (::getsockname(sock.fd(),
                          reinterpret_cast<sockaddr *>(&actual),
                          &len) != 0) {
            failErrno("getsockname()");
        }
        *bound_port = ntohs(actual.sin_port);
    }
    return sock;
}

Socket
listenUnix(const std::string &path)
{
    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket()");
    ::unlink(path.c_str()); // stale socket from a previous run
    sockaddr_un sa = unixAddress(path);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&sa),
               sizeof(sa)) != 0) {
        failErrno("cannot bind unix socket " + path);
    }
    if (::listen(sock.fd(), 64) != 0)
        failErrno("listen()");
    return sock;
}

Socket
acceptOn(const Socket &listener)
{
    while (true) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        failErrno("accept()");
    }
}

Socket
connectTo(const Endpoint &endpoint, int timeout_ms)
{
    Socket sock(::socket(endpoint.unixDomain ? AF_UNIX : AF_INET,
                         SOCK_STREAM, 0));
    if (!sock.valid())
        failErrno("socket()");
    if (timeout_ms > 0) {
        timeval tv{};
        tv.tv_sec = timeout_ms / 1000;
        tv.tv_usec = (timeout_ms % 1000) * 1000;
        ::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                     sizeof(tv));
    }
    int rc;
    if (endpoint.unixDomain) {
        sockaddr_un sa = unixAddress(endpoint.path);
        rc = ::connect(sock.fd(), reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa));
    } else {
        sockaddr_in sa = tcpAddress(endpoint.host, endpoint.port);
        if (endpoint.port == 0)
            mtperf_fatal("cannot connect to port 0 (", endpoint.display(),
                         ")");
        rc = ::connect(sock.fd(), reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa));
    }
    if (rc != 0)
        failErrno("cannot connect to " + endpoint.display());
    if (!endpoint.unixDomain) {
        // Request/response framing wants low latency, not Nagle.
        const int one = 1;
        ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return sock;
}

bool
waitReadable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    while (true) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return true;
        if (rc == 0)
            return false;
        if (errno == EINTR)
            continue;
        failErrno("poll()");
    }
}

void
writeAll(int fd, const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t written = ::send(fd, p, n, MSG_NOSIGNAL);
        if (written < 0) {
            if (errno == EINTR)
                continue;
            failErrno("socket write failed");
        }
        p += written;
        n -= static_cast<std::size_t>(written);
    }
}

bool
readFully(int fd, void *data, std::size_t n)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                mtperf_fatal("socket read timed out");
            failErrno("socket read failed");
        }
        if (r == 0) {
            if (got == 0)
                return false; // clean EOF between frames
            mtperf_fatal("connection closed mid-frame (got ", got,
                         " of ", n, " bytes)");
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

bool
waitWritable(int fd, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    while (true) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0)
            return true;
        if (rc == 0)
            return false;
        if (errno == EINTR)
            continue;
        failErrno("poll()");
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
        failErrno("cannot set O_NONBLOCK");
}

Socket
acceptNonBlocking(const Socket &listener)
{
    while (true) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK ||
            errno == ECONNABORTED)
            return Socket();
        failErrno("accept()");
    }
}

std::size_t
readSome(int fd, void *data, std::size_t n, bool *eof)
{
    if (eof != nullptr)
        *eof = false;
    while (true) {
        const ssize_t r = ::recv(fd, data, n, 0);
        if (r > 0)
            return static_cast<std::size_t>(r);
        if (r == 0) {
            if (eof != nullptr)
                *eof = true;
            return 0;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return 0;
        failErrno("socket read failed");
    }
}

std::size_t
writeSome(int fd, const void *data, std::size_t n)
{
    while (true) {
        const ssize_t written = ::send(fd, data, n, MSG_NOSIGNAL);
        if (written >= 0)
            return static_cast<std::size_t>(written);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return 0;
        failErrno("socket write failed");
    }
}

Poller::Poller() : fd_(::epoll_create1(EPOLL_CLOEXEC))
{
    if (fd_ < 0)
        failErrno("epoll_create1()");
}

Poller::~Poller()
{
    if (fd_ >= 0)
        ::close(fd_);
}

namespace {

epoll_event
epollEventFor(std::uint64_t tag, bool want_write)
{
    epoll_event ev{};
    ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = tag;
    return ev;
}

} // namespace

void
Poller::add(int fd, std::uint64_t tag, bool want_write)
{
    epoll_event ev = epollEventFor(tag, want_write);
    if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        failErrno("epoll_ctl(ADD)");
}

void
Poller::modify(int fd, std::uint64_t tag, bool want_write)
{
    epoll_event ev = epollEventFor(tag, want_write);
    if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) != 0)
        failErrno("epoll_ctl(MOD)");
}

void
Poller::remove(int fd)
{
    epoll_event ev{};
    if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, &ev) != 0)
        failErrno("epoll_ctl(DEL)");
}

std::size_t
Poller::wait(std::vector<PollEvent> &events, int timeout_ms)
{
    constexpr int kMaxEvents = 64;
    epoll_event raw[kMaxEvents];
    int count;
    while (true) {
        count = ::epoll_wait(fd_, raw, kMaxEvents, timeout_ms);
        if (count >= 0)
            break;
        if (errno == EINTR)
            continue;
        failErrno("epoll_wait()");
    }
    events.clear();
    events.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        PollEvent ev;
        ev.tag = raw[i].data.u64;
        ev.readable = (raw[i].events & EPOLLIN) != 0;
        ev.writable = (raw[i].events & EPOLLOUT) != 0;
        ev.hangup = (raw[i].events & (EPOLLHUP | EPOLLERR)) != 0;
        events.push_back(ev);
    }
    return events.size();
}

WakeupFd::WakeupFd()
    : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))
{
    if (fd_ < 0)
        failErrno("eventfd()");
}

WakeupFd::~WakeupFd()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
WakeupFd::signal()
{
    const std::uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a wakeup.
    [[maybe_unused]] const ssize_t rc =
        ::write(fd_, &one, sizeof(one));
}

void
WakeupFd::drain()
{
    std::uint64_t count = 0;
    [[maybe_unused]] const ssize_t rc =
        ::read(fd_, &count, sizeof(count));
}

} // namespace mtperf::net
