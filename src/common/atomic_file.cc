#include "common/atomic_file.h"

#include <filesystem>
#include <system_error>

#include "common/fault.h"
#include "common/logging.h"

namespace mtperf {

AtomicFile::AtomicFile(const std::string &path, bool binary)
    : path_(path), temp_(path + ".tmp")
{
    MTPERF_FAULT_POINT("fs.open.fail");
    auto mode = std::ios::out | std::ios::trunc;
    if (binary)
        mode |= std::ios::binary;
    out_.open(temp_, mode);
    if (!out_)
        mtperf_fatal("cannot open '", temp_, "' for writing");
}

AtomicFile::~AtomicFile()
{
    if (!done_)
        discard();
}

void
AtomicFile::commit()
{
    mtperf_assert(!done_, "commit() on a finished AtomicFile");
    out_.flush();
    const bool write_ok = static_cast<bool>(out_);
    out_.close();
    std::error_code ec;
    if (!write_ok) {
        std::filesystem::remove(temp_, ec);
        done_ = true;
        mtperf_fatal("write to '", temp_, "' failed; '", path_,
                     "' left untouched");
    }
    try {
        MTPERF_FAULT_POINT("atomic.commit.fail");
        std::filesystem::rename(temp_, path_);
    } catch (const std::filesystem::filesystem_error &e) {
        std::filesystem::remove(temp_, ec);
        done_ = true;
        mtperf_fatal("cannot rename '", temp_, "' to '", path_,
                     "': ", e.what());
    } catch (...) {
        std::filesystem::remove(temp_, ec);
        done_ = true;
        throw;
    }
    done_ = true;
}

void
AtomicFile::discard()
{
    done_ = true;
    out_.close();
    std::error_code ec;
    std::filesystem::remove(temp_, ec);
}

void
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &writer,
                bool binary)
{
    AtomicFile file(path, binary);
    writer(file.stream());
    file.commit();
}

} // namespace mtperf
