/**
 * @file
 * Seed-deterministic fault injection for failure rehearsal.
 *
 * Long pipelines die in ways unit tests rarely exercise: a disk fills
 * mid-write, a worker task throws, an open() fails under pressure.
 * This registry lets tests and operators make those failures happen
 * *on purpose and reproducibly*: code marks named fault points
 * (MTPERF_FAULT_POINT("trace.write.short")), and a spec — from the
 * --fault-spec CLI flag or the MTPERF_FAULTS environment variable —
 * arms a subset of them with a trigger probability and an optional
 * trigger budget.
 *
 * Spec grammar (comma-separated):
 *
 *     site[:prob[:max]]
 *
 * e.g. "fs.open.fail" (always fire), "pool.task.throw:0.25" (fire on
 * a deterministic 25% of visits), "trace.write.short:1:1" (fire on
 * the first visit only). Decisions are a pure function of
 * (seed, site, visit index), so the same spec and seed reproduce the
 * same failure schedule run after run.
 *
 * Cost when disarmed: a single relaxed atomic load per fault point
 * (the registry is consulted only once some spec armed it). Defining
 * MTPERF_DISABLE_FAULT_INJECTION compiles every fault point to
 * nothing for shipping builds that must not carry the hooks.
 *
 * Fault-point catalogue (kept current in DESIGN.md "Robustness"):
 *   fs.open.fail          opening any artifact for read or write
 *   atomic.commit.fail    the rename step of an atomic file write
 *   trace.write.short     a trace record write is cut short mid-record
 *   model.save.fail       M5' model serialization fails mid-stream
 *   csv.write.fail        CSV/dataset export fails mid-stream
 *   pool.task.throw       a thread-pool task throws
 *   sim.workload.fail     a suite workload simulation dies
 *   checkpoint.write.fail persisting a suite checkpoint fails
 *   serve.accept          the prediction server drops a fresh connection
 *   serve.read            a serving connection dies mid-frame read
 *   obs.flush             writing a --metrics-out/--trace-out dump fails
 *   validate.report       writing the validate drift report fails
 */

#ifndef MTPERF_COMMON_FAULT_H_
#define MTPERF_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace mtperf::fault {

/**
 * The error an armed fault point throws. Derives from FatalError so
 * generic error handling (CLI exit codes, parallel-loop rethrow)
 * treats an injected failure exactly like the real one it rehearses.
 */
class InjectedFault : public FatalError
{
  public:
    explicit InjectedFault(const std::string &site)
        : FatalError("injected fault at '" + site + "'"), site_(site)
    {}

    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

namespace detail {
extern std::atomic<bool> armed;
} // namespace detail

/** True once configure() armed at least one site. */
inline bool
armed()
{
    return detail::armed.load(std::memory_order_relaxed);
}

/**
 * Arm the registry from a spec string (see the grammar above). An
 * empty spec disarms everything. @p seed drives the deterministic
 * per-visit trigger decisions.
 * @throw UsageError on a malformed spec.
 */
void configure(const std::string &spec, std::uint64_t seed = 0);

/**
 * Arm from the MTPERF_FAULTS environment variable (seed from
 * MTPERF_FAULT_SEED, default 0). No-op when the variable is unset, so
 * programmatic configure() calls survive.
 */
void configureFromEnv();

/** Disarm every site and forget all counters. */
void clear();

/**
 * Deterministically decide whether the fault at @p site fires on this
 * visit. Counts the visit either way. Most callers use
 * MTPERF_FAULT_POINT instead; call this directly only when the
 * failure needs site-specific behavior (e.g. a short write) rather
 * than a plain throw.
 */
bool shouldFail(const char *site);

/** Visits a site has seen since it was armed (0 if never armed). */
std::uint64_t visits(const std::string &site);

/** Times a site actually fired. */
std::uint64_t triggered(const std::string &site);

/** The armed site names, for diagnostics. */
std::vector<std::string> activeSites();

} // namespace mtperf::fault

#ifdef MTPERF_DISABLE_FAULT_INJECTION
#define MTPERF_FAULT_POINT(site) ((void)0)
#else
/** Throw InjectedFault at a named site when armed and triggered. */
#define MTPERF_FAULT_POINT(site)                                          \
    do {                                                                  \
        if (::mtperf::fault::armed() &&                                   \
            ::mtperf::fault::shouldFail(site)) {                          \
            throw ::mtperf::fault::InjectedFault(site);                   \
        }                                                                 \
    } while (0)
#endif

#endif // MTPERF_COMMON_FAULT_H_
