/**
 * @file
 * Minimal logging and error-reporting facilities.
 *
 * Follows the gem5 split between unrecoverable internal errors (panic)
 * and user-caused errors (fatal): panic() aborts, fatal() throws a
 * FatalError so library users and tests can catch misconfiguration.
 */

#ifndef MTPERF_COMMON_LOGGING_H_
#define MTPERF_COMMON_LOGGING_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace mtperf {

/** Error thrown for user-caused conditions (bad arguments, bad files). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * A FatalError caused by how the tool was invoked (bad flags, values
 * out of range) rather than by what it read. The CLI maps UsageError
 * to exit code 2 and other FatalErrors to exit code 3 (bad data).
 */
class UsageError : public FatalError
{
  public:
    explicit UsageError(const std::string &msg) : FatalError(msg) {}
};

/** Severity levels for log messages. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Output shape for the log sink. Text is the classic "[level] msg"
 * line; Json emits one JSON object per line with a monotonic
 * timestamp, level, thread id, component tag, and message — what
 * `mtperf <cmd> --log-json` selects for machine consumption.
 */
enum class LogFormat { Text, Json };

/**
 * Set the global minimum level at which messages are emitted.
 * Messages below this level are suppressed. Default is Info.
 */
void setLogLevel(LogLevel level);

/** @return the current global minimum log level. */
LogLevel logLevel();

/** Parse "debug"/"info"/"warn"/"error"; @throw UsageError otherwise. */
LogLevel parseLogLevel(const std::string &name);

/** Select text (default) or JSON-lines log output. */
void setLogFormat(LogFormat format);

/** @return the current global log format. */
LogFormat logFormat();

/** Emit a message to stderr if @p level passes the global threshold. */
void logMessage(LogLevel level, const std::string &msg);

/**
 * Same, tagged with the emitting component ("sim", "tree", "serve",
 * ...). The tag appears as the "component" field in JSON output and
 * as a "component: " prefix in text output.
 */
void logMessage(LogLevel level, const char *component,
                const std::string &msg);

namespace detail {

/** Build a string from stream-style arguments. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Log an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Log a warning message. */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

/** Log an informational message tagged with a component. */
template <typename... Args>
void
informAs(const char *component, Args &&...args)
{
    logMessage(LogLevel::Info, component,
               detail::concat(std::forward<Args>(args)...));
}

/** Log a warning message tagged with a component. */
template <typename... Args>
void
warnAs(const char *component, Args &&...args)
{
    logMessage(LogLevel::Warn, component,
               detail::concat(std::forward<Args>(args)...));
}

} // namespace mtperf

/** Abort on an internal invariant violation (a library bug). */
#define mtperf_panic(...)                                                    \
    ::mtperf::detail::panicImpl(__FILE__, __LINE__,                          \
                                ::mtperf::detail::concat(__VA_ARGS__))

/** Throw FatalError for a user-caused condition (bad input or config). */
#define mtperf_fatal(...)                                                    \
    ::mtperf::detail::fatalImpl(__FILE__, __LINE__,                          \
                                ::mtperf::detail::concat(__VA_ARGS__))

/** Panic if @p cond does not hold. */
#define mtperf_assert(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::mtperf::detail::panicImpl(                                     \
                __FILE__, __LINE__,                                          \
                ::mtperf::detail::concat("assertion failed: " #cond " ",    \
                                         ##__VA_ARGS__));                    \
        }                                                                    \
    } while (0)

#endif // MTPERF_COMMON_LOGGING_H_
