#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace mtperf {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
    hasCachedNormal_ = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    mtperf_assert(n > 0, "uniformInt(0) is undefined");
    // Lemire's nearly-divisionless bounded draw with rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        std::uint64_t threshold = -n % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    mtperf_assert(lo <= hi, "empty integer range");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double lambda)
{
    mtperf_assert(lambda > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / lambda;
}

std::uint64_t
Rng::geometric(double p)
{
    mtperf_assert(p > 0.0 && p <= 1.0, "geometric p out of range");
    if (p >= 1.0)
        return 0;
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    return ZipfSampler(n, s).sample(*this);
}

namespace {

// Rejection-inversion sampling (Hormann & Derflinger 1996). The
// helper H is the antiderivative of x^-s generalized to s == 1.
double
zipfHIntegral(double e, double x)
{
    const double log_x = std::log(x);
    if (std::abs(1.0 - e) < 1e-12)
        return log_x;
    return std::expm1((1.0 - e) * log_x) / (1.0 - e);
}

double
zipfH(double e, double x)
{
    return std::exp(-e * std::log(x));
}

double
zipfHIntegralInverse(double e, double x)
{
    if (std::abs(1.0 - e) < 1e-12)
        return std::exp(x);
    double t = x * (1.0 - e);
    if (t < -1.0)
        t = -1.0;
    return std::exp(std::log1p(t) / (1.0 - e));
}

} // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s)
{
    mtperf_assert(n > 0, "zipf over empty support");
    if (n == 1)
        return;
    hX1_ = zipfHIntegral(s_, 1.5) - 1.0;
    const double h_n = zipfHIntegral(s_, static_cast<double>(n_) + 0.5);
    d_ = zipfHIntegral(s_, 0.5);
    span_ = h_n - d_;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (n_ == 1)
        return 0;

    for (;;) {
        const double u = d_ + span_ * rng.uniform();
        const double x = zipfHIntegralInverse(s_, u);
        double k = std::floor(x + 0.5);
        if (k < 1.0)
            k = 1.0;
        else if (k > static_cast<double>(n_))
            k = static_cast<double>(n_);
        if (k - x <= hX1_ ||
            u >= zipfHIntegral(s_, k + 0.5) - zipfH(s_, k)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

} // namespace mtperf
