/**
 * @file
 * Multilayer-perceptron regressor (the paper's ANN comparator).
 *
 * A fully connected feed-forward network with one or two hidden tanh
 * layers and a linear output unit, trained by mini-batch gradient
 * descent with momentum on standardized inputs and target. This mirrors
 * the WEKA MultilayerPerceptron setup the companion study used as the
 * black-box accuracy ceiling: slightly better raw accuracy than the
 * model tree, with no interpretability.
 */

#ifndef MTPERF_ML_MLP_MLP_H_
#define MTPERF_ML_MLP_MLP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/transform.h"
#include "ml/regressor.h"

namespace mtperf {

/** Hyper-parameters for MlpRegressor. */
struct MlpOptions
{
    std::vector<std::size_t> hiddenLayers = {16}; //!< units per layer
    std::size_t epochs = 400;
    std::size_t batchSize = 32;
    double learningRate = 0.01;
    double momentum = 0.9;
    double l2 = 1e-5;          //!< weight decay
    std::uint64_t seed = 1;    //!< weight-init and shuffle seed
};

/** Feed-forward neural-network regressor. */
class MlpRegressor : public Regressor
{
  public:
    explicit MlpRegressor(MlpOptions options = {});

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "MLP"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<MlpRegressor>(options_);
    }

    /** Mean squared training error of the final epoch (standardized). */
    double finalTrainingLoss() const { return finalLoss_; }

  private:
    /** One dense layer: out = act(W in + b). */
    struct Layer
    {
        std::size_t inSize = 0;
        std::size_t outSize = 0;
        std::vector<double> w;  //!< outSize x inSize, row-major
        std::vector<double> b;
        std::vector<double> vw; //!< momentum buffers
        std::vector<double> vb;
        bool linear = false;    //!< output layer has no activation
    };

    void forward(const std::vector<double> &input,
                 std::vector<std::vector<double>> &activations) const;

    MlpOptions options_;
    Standardizer standardizer_;
    std::vector<Layer> layers_;
    double finalLoss_ = 0.0;
};

} // namespace mtperf

#endif // MTPERF_ML_MLP_MLP_H_
