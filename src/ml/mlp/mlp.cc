#include "ml/mlp/mlp.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace mtperf {

MlpRegressor::MlpRegressor(MlpOptions options) : options_(std::move(options))
{
    if (options_.hiddenLayers.empty())
        mtperf_fatal("MLP: need at least one hidden layer");
    for (std::size_t units : options_.hiddenLayers) {
        if (units == 0)
            mtperf_fatal("MLP: hidden layer with zero units");
    }
    if (options_.batchSize == 0)
        mtperf_fatal("MLP: batch size must be positive");
}

void
MlpRegressor::forward(const std::vector<double> &input,
                      std::vector<std::vector<double>> &activations) const
{
    activations.resize(layers_.size() + 1);
    activations[0] = input;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Layer &layer = layers_[l];
        auto &out = activations[l + 1];
        out.assign(layer.outSize, 0.0);
        const auto &in = activations[l];
        for (std::size_t o = 0; o < layer.outSize; ++o) {
            double acc = layer.b[o];
            const double *w_row = layer.w.data() + o * layer.inSize;
            for (std::size_t i = 0; i < layer.inSize; ++i)
                acc += w_row[i] * in[i];
            out[o] = layer.linear ? acc : std::tanh(acc);
        }
    }
}

void
MlpRegressor::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("MLP: empty training set");

    standardizer_.fit(train);
    const std::size_t n_in = train.numAttributes();

    // Assemble layer sizes: inputs -> hidden... -> 1 linear output.
    std::vector<std::size_t> sizes;
    sizes.push_back(n_in);
    for (std::size_t units : options_.hiddenLayers)
        sizes.push_back(units);
    sizes.push_back(1);

    Rng rng(options_.seed);
    layers_.clear();
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
        Layer layer;
        layer.inSize = sizes[l];
        layer.outSize = sizes[l + 1];
        layer.linear = (l + 2 == sizes.size());
        layer.w.resize(layer.inSize * layer.outSize);
        layer.b.assign(layer.outSize, 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.vb.assign(layer.outSize, 0.0);
        // Xavier/Glorot uniform initialization keeps tanh units in
        // their linear region at the start of training.
        const double limit =
            std::sqrt(6.0 / static_cast<double>(layer.inSize +
                                                layer.outSize));
        for (auto &w : layer.w)
            w = rng.uniform(-limit, limit);
        layers_.push_back(std::move(layer));
    }

    // Pre-standardize the training set once.
    std::vector<std::vector<double>> inputs(train.size());
    std::vector<double> targets(train.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
        standardizer_.transformRow(train.row(r), inputs[r]);
        targets[r] = standardizer_.transformTarget(train.target(r));
    }

    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<std::vector<double>> acts;
    std::vector<std::vector<double>> deltas(layers_.size());

    // Per-batch gradient accumulators, shaped like the weights.
    std::vector<std::vector<double>> gw(layers_.size());
    std::vector<std::vector<double>> gb(layers_.size());
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        gw[l].assign(layers_[l].w.size(), 0.0);
        gb[l].assign(layers_[l].b.size(), 0.0);
    }

    for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
        rng.shuffle(order);
        double epoch_loss = 0.0;

        for (std::size_t start = 0; start < order.size();
             start += options_.batchSize) {
            const std::size_t end =
                std::min(order.size(), start + options_.batchSize);
            const auto batch = static_cast<double>(end - start);

            for (auto &g : gw)
                std::fill(g.begin(), g.end(), 0.0);
            for (auto &g : gb)
                std::fill(g.begin(), g.end(), 0.0);

            for (std::size_t bi = start; bi < end; ++bi) {
                const std::size_t r = order[bi];
                forward(inputs[r], acts);
                const double pred = acts.back()[0];
                const double err = pred - targets[r];
                epoch_loss += err * err;

                // Backward pass: delta for the linear output is the
                // raw error; hidden deltas apply tanh' = 1 - a^2.
                deltas.back().assign(1, err);
                for (std::size_t l = layers_.size() - 1; l-- > 0;) {
                    const Layer &next = layers_[l + 1];
                    auto &delta = deltas[l];
                    delta.assign(layers_[l].outSize, 0.0);
                    const auto &next_delta = deltas[l + 1];
                    for (std::size_t o = 0; o < next.outSize; ++o) {
                        const double d = next_delta[o];
                        const double *w_row =
                            next.w.data() + o * next.inSize;
                        for (std::size_t i = 0; i < next.inSize; ++i)
                            delta[i] += d * w_row[i];
                    }
                    const auto &a = acts[l + 1];
                    for (std::size_t i = 0; i < delta.size(); ++i)
                        delta[i] *= 1.0 - a[i] * a[i];
                }

                for (std::size_t l = 0; l < layers_.size(); ++l) {
                    const auto &in = acts[l];
                    const auto &delta = deltas[l];
                    for (std::size_t o = 0; o < layers_[l].outSize; ++o) {
                        const double d = delta[o];
                        double *g_row =
                            gw[l].data() + o * layers_[l].inSize;
                        for (std::size_t i = 0; i < layers_[l].inSize;
                             ++i) {
                            g_row[i] += d * in[i];
                        }
                        gb[l][o] += d;
                    }
                }
            }

            // Momentum SGD update with L2 decay.
            for (std::size_t l = 0; l < layers_.size(); ++l) {
                Layer &layer = layers_[l];
                for (std::size_t i = 0; i < layer.w.size(); ++i) {
                    const double grad = gw[l][i] / batch +
                                        options_.l2 * layer.w[i];
                    layer.vw[i] = options_.momentum * layer.vw[i] -
                                  options_.learningRate * grad;
                    layer.w[i] += layer.vw[i];
                }
                for (std::size_t i = 0; i < layer.b.size(); ++i) {
                    const double grad = gb[l][i] / batch;
                    layer.vb[i] = options_.momentum * layer.vb[i] -
                                  options_.learningRate * grad;
                    layer.b[i] += layer.vb[i];
                }
            }
        }
        finalLoss_ = epoch_loss / static_cast<double>(train.size());
    }
}

double
MlpRegressor::predict(std::span<const double> row) const
{
    mtperf_assert(!layers_.empty(), "predict() before fit()");
    std::vector<double> input;
    standardizer_.transformRow(row, input);
    std::vector<std::vector<double>> acts;
    forward(input, acts);
    return standardizer_.inverseTarget(acts.back()[0]);
}

} // namespace mtperf
