/**
 * @file
 * String-keyed factory registry for regression learners.
 *
 * Everything that lets a user pick a learner — the CLI's --model
 * flag, the comparison benches, scripted experiments — goes through
 * this registry instead of hard-coded constructor calls. A learner is
 * named by a spec string:
 *
 *     name                       e.g.  "m5prime"
 *     name:key=value,key=value   e.g.  "m5prime:min-instances=430"
 *                                      "mlp:hidden=24-12,epochs=250"
 *
 * Unknown names and unknown or malformed parameters raise FatalError
 * naming the offender, so a typo in an experiment config fails fast
 * instead of silently running the default.
 *
 * Built-in learners: m5prime, m5rules, bagged-m5, cart, linear, knn,
 * mlp, svr, first-order. Library users can register their own
 * builders (last registration wins, so tests can override).
 */

#ifndef MTPERF_ML_REGISTRY_H_
#define MTPERF_ML_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ml/regressor.h"

namespace mtperf {

/**
 * Parameters of a learner spec, with consumption tracking: builders
 * pull the keys they understand, then finish() rejects leftovers so
 * misspelled keys surface as errors.
 */
class RegressorParams
{
  public:
    RegressorParams(std::string learner,
                    std::map<std::string, std::string> values);

    /** The learner name the spec addressed (for error messages). */
    const std::string &learner() const { return learner_; }

    std::string str(const std::string &key, const std::string &def);
    double real(const std::string &key, double def);
    std::size_t size(const std::string &key, std::size_t def);
    std::uint64_t seed(const std::string &key, std::uint64_t def);
    bool flag(const std::string &key, bool def); //!< on/off, true/false, 1/0

    /** @throw FatalError if any parameter was never consumed. */
    void finish();

  private:
    std::string learner_;
    std::map<std::string, std::string> values_;
};

/** Registry of named learner builders. */
class RegressorFactory
{
  public:
    /** Builds a learner from (already-parsed) spec parameters. */
    using Builder =
        std::function<std::unique_ptr<Regressor>(RegressorParams &)>;

    /**
     * Create a learner from @p spec ("name" or "name:k=v,...").
     * @throw FatalError for unknown names or bad parameters.
     */
    static std::unique_ptr<Regressor> create(const std::string &spec);

    /** True if @p name (no parameters) is a registered learner. */
    static bool known(const std::string &name);

    /** All registered learner names, sorted. */
    static std::vector<std::string> names();

    /** Register (or replace) a builder under @p name. */
    static void registerBuilder(const std::string &name, Builder builder);

  private:
    static std::map<std::string, Builder> &builders();
};

} // namespace mtperf

#endif // MTPERF_ML_REGISTRY_H_
