#include "ml/registry.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "ml/baseline/first_order_model.h"
#include "ml/knn/knn.h"
#include "ml/linear/linear_model.h"
#include "ml/mlp/mlp.h"
#include "ml/svr/svr.h"
#include "ml/tree/bagged_m5.h"
#include "ml/tree/m5prime.h"
#include "ml/tree/m5rules.h"
#include "ml/tree/regression_tree.h"

namespace mtperf {

RegressorParams::RegressorParams(std::string learner,
                                 std::map<std::string, std::string> values)
    : learner_(std::move(learner)), values_(std::move(values))
{
}

std::string
RegressorParams::str(const std::string &key, const std::string &def)
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::string value = it->second;
    values_.erase(it);
    return value;
}

double
RegressorParams::real(const std::string &key, double def)
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const double value =
        parseDouble(it->second, learner_ + ":" + key);
    values_.erase(it);
    return value;
}

std::size_t
RegressorParams::size(const std::string &key, std::size_t def)
{
    const double value = real(key, static_cast<double>(def));
    if (value < 0 || value != std::floor(value))
        mtperf_fatal("parameter ", key, " of learner ", learner_,
                     " must be a non-negative integer");
    return static_cast<std::size_t>(value);
}

std::uint64_t
RegressorParams::seed(const std::string &key, std::uint64_t def)
{
    return static_cast<std::uint64_t>(
        size(key, static_cast<std::size_t>(def)));
}

bool
RegressorParams::flag(const std::string &key, bool def)
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string value = toLower(it->second);
    values_.erase(it);
    if (value == "on" || value == "true" || value == "1")
        return true;
    if (value == "off" || value == "false" || value == "0")
        return false;
    mtperf_fatal("parameter ", key, " of learner ", learner_,
                 " must be on/off, got '", value, "'");
}

void
RegressorParams::finish()
{
    if (values_.empty())
        return;
    mtperf_fatal("unknown parameter '", values_.begin()->first,
                 "' for learner ", learner_);
}

namespace {

/** Tree knobs shared by m5prime, m5rules and bagged-m5. */
M5Options
m5OptionsFrom(RegressorParams &params)
{
    M5Options options;
    options.minInstances =
        params.size("min-instances", options.minInstances);
    options.sdFraction = params.real("sd-fraction", options.sdFraction);
    options.prune = params.flag("prune", options.prune);
    options.smooth = params.flag("smooth", options.smooth);
    options.smoothingK = params.real("smoothing-k", options.smoothingK);
    options.simplifyModels =
        params.flag("simplify", options.simplifyModels);
    options.maxDepth = params.size("max-depth", options.maxDepth);
    return options;
}

/** "24-12" -> {24, 12}. */
std::vector<std::size_t>
parseHiddenLayers(const std::string &text, const std::string &learner)
{
    std::vector<std::size_t> layers;
    for (const std::string &field : split(text, '-')) {
        const double v = parseDouble(field, learner + ":hidden");
        if (v < 1 || v != std::floor(v))
            mtperf_fatal("hidden layer sizes of ", learner,
                         " must be positive integers, got '", text, "'");
        layers.push_back(static_cast<std::size_t>(v));
    }
    return layers;
}

std::map<std::string, RegressorFactory::Builder>
builtinBuilders()
{
    std::map<std::string, RegressorFactory::Builder> builders;

    builders["m5prime"] = [](RegressorParams &p) {
        return std::make_unique<M5Prime>(m5OptionsFrom(p));
    };
    builders["m5rules"] = [](RegressorParams &p) {
        M5RulesOptions options;
        options.treeOptions = m5OptionsFrom(p);
        options.maxRules = p.size("max-rules", options.maxRules);
        return std::make_unique<M5Rules>(options);
    };
    builders["bagged-m5"] = [](RegressorParams &p) {
        BaggedM5Options options;
        options.treeOptions = m5OptionsFrom(p);
        options.bags = p.size("bags", options.bags);
        if (options.bags == 0)
            mtperf_fatal("parameter bags of learner bagged-m5 must "
                         "be at least 1");
        options.seed = p.seed("seed", options.seed);
        return std::make_unique<BaggedM5>(options);
    };
    builders["cart"] = [](RegressorParams &p) {
        RegressionTreeOptions options;
        options.minInstances =
            p.size("min-instances", options.minInstances);
        options.sdFraction = p.real("sd-fraction", options.sdFraction);
        options.prune = p.flag("prune", options.prune);
        options.maxDepth = p.size("max-depth", options.maxDepth);
        return std::make_unique<RegressionTree>(options);
    };
    builders["linear"] = [](RegressorParams &p) {
        return std::make_unique<LinearRegression>(
            p.flag("simplify", false));
    };
    builders["knn"] = [](RegressorParams &p) {
        KnnOptions options;
        options.k = p.size("k", options.k);
        options.distanceWeighted =
            p.flag("weighted", options.distanceWeighted);
        return std::make_unique<KnnRegressor>(options);
    };
    builders["mlp"] = [](RegressorParams &p) {
        MlpOptions options;
        const std::string hidden = p.str("hidden", "");
        if (!hidden.empty())
            options.hiddenLayers =
                parseHiddenLayers(hidden, p.learner());
        options.epochs = p.size("epochs", options.epochs);
        options.batchSize = p.size("batch", options.batchSize);
        options.learningRate = p.real("lr", options.learningRate);
        options.momentum = p.real("momentum", options.momentum);
        options.l2 = p.real("l2", options.l2);
        options.seed = p.seed("seed", options.seed);
        return std::make_unique<MlpRegressor>(options);
    };
    builders["svr"] = [](RegressorParams &p) {
        SvrOptions options;
        const std::string kernel = p.str("kernel", "rbf");
        if (kernel == "rbf")
            options.kernel = SvrKernel::Rbf;
        else if (kernel == "linear")
            options.kernel = SvrKernel::Linear;
        else
            mtperf_fatal("unknown svr kernel '", kernel,
                         "' (rbf or linear)");
        options.c = p.real("c", options.c);
        options.epsilon = p.real("epsilon", options.epsilon);
        options.gamma = p.real("gamma", options.gamma);
        options.tolerance = p.real("tolerance", options.tolerance);
        options.maxPasses = p.size("max-passes", options.maxPasses);
        return std::make_unique<SvrRegressor>(options);
    };
    builders["first-order"] = [](RegressorParams &) {
        return std::make_unique<perf::FirstOrderModel>();
    };

    return builders;
}

} // namespace

std::map<std::string, RegressorFactory::Builder> &
RegressorFactory::builders()
{
    static std::map<std::string, Builder> registry = builtinBuilders();
    return registry;
}

std::unique_ptr<Regressor>
RegressorFactory::create(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string name = trim(spec.substr(0, colon));
    std::map<std::string, std::string> values;
    if (colon != std::string::npos) {
        for (const std::string &field :
             split(spec.substr(colon + 1), ',')) {
            if (trim(field).empty())
                continue;
            const auto eq = field.find('=');
            if (eq == std::string::npos)
                mtperf_fatal("malformed learner parameter '", field,
                             "' in spec '", spec, "' (want key=value)");
            values[trim(field.substr(0, eq))] =
                trim(field.substr(eq + 1));
        }
    }

    const auto it = builders().find(name);
    if (it == builders().end()) {
        std::string known_names;
        for (const auto &n : names())
            known_names += (known_names.empty() ? "" : ", ") + n;
        mtperf_fatal("unknown learner '", name, "' (known: ",
                     known_names, ")");
    }

    RegressorParams params(name, std::move(values));
    auto learner = it->second(params);
    mtperf_assert(learner != nullptr, "builder for ", name,
                  " returned null");
    params.finish();
    return learner;
}

bool
RegressorFactory::known(const std::string &name)
{
    return builders().count(name) > 0;
}

std::vector<std::string>
RegressorFactory::names()
{
    std::vector<std::string> out;
    for (const auto &[name, builder] : builders())
        out.push_back(name);
    return out;
}

void
RegressorFactory::registerBuilder(const std::string &name,
                                  Builder builder)
{
    builders()[name] = std::move(builder);
}

} // namespace mtperf
