/**
 * @file
 * k-nearest-neighbour regression baseline.
 *
 * A simple instance-based comparator: predictions average the targets
 * of the k nearest training rows in standardized Euclidean space,
 * optionally weighted by inverse distance. Included to round out the
 * accuracy comparison (E5) with a non-parametric method.
 */

#ifndef MTPERF_ML_KNN_KNN_H_
#define MTPERF_ML_KNN_KNN_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/transform.h"
#include "ml/regressor.h"

namespace mtperf {

/** Hyper-parameters for KnnRegressor. */
struct KnnOptions
{
    std::size_t k = 8;
    bool distanceWeighted = true;
};

/** k-NN regressor over standardized attributes. */
class KnnRegressor : public Regressor
{
  public:
    explicit KnnRegressor(KnnOptions options = {});

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "kNN"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<KnnRegressor>(options_);
    }

  private:
    KnnOptions options_;
    Standardizer standardizer_;
    std::vector<std::vector<double>> points_;
    std::vector<double> targets_;
};

} // namespace mtperf

#endif // MTPERF_ML_KNN_KNN_H_
