#include "ml/knn/knn.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtperf {

KnnRegressor::KnnRegressor(KnnOptions options) : options_(options)
{
    if (options_.k == 0)
        mtperf_fatal("kNN: k must be positive");
}

void
KnnRegressor::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("kNN: empty training set");
    standardizer_.fit(train);
    points_.assign(train.size(), {});
    targets_.resize(train.size());
    for (std::size_t r = 0; r < train.size(); ++r) {
        standardizer_.transformRow(train.row(r), points_[r]);
        targets_[r] = train.target(r);
    }
}

double
KnnRegressor::predict(std::span<const double> row) const
{
    mtperf_assert(!points_.empty(), "predict() before fit()");
    std::vector<double> x;
    standardizer_.transformRow(row, x);

    const std::size_t k = std::min(options_.k, points_.size());
    // Partial selection of the k smallest squared distances.
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(points_.size());
    for (std::size_t i = 0; i < points_.size(); ++i) {
        double d2 = 0.0;
        const auto &p = points_[i];
        for (std::size_t j = 0; j < x.size(); ++j) {
            const double d = p[j] - x[j];
            d2 += d * d;
        }
        dist.emplace_back(d2, i);
    }
    std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());

    double weight_sum = 0.0, acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
        const auto [d2, idx] = dist[i];
        const double w = options_.distanceWeighted
                             ? 1.0 / (std::sqrt(d2) + 1e-9)
                             : 1.0;
        acc += w * targets_[idx];
        weight_sum += w;
    }
    return acc / weight_sum;
}

} // namespace mtperf
