#include "ml/svr/svr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/rng.h"

namespace mtperf {

namespace {

/**
 * Kernel-matrix cache cap: above this many training rows the learner
 * subsamples, keeping memory O(cap^2) and each sweep O(cap^2). This is
 * the usual practical concession for quadratic-cost kernel solvers.
 */
constexpr std::size_t kMaxTrainRows = 2048;

} // namespace

SvrRegressor::SvrRegressor(SvrOptions options) : options_(options)
{
    if (options_.c <= 0.0)
        mtperf_fatal("SVR: C must be positive");
    if (options_.epsilon < 0.0)
        mtperf_fatal("SVR: epsilon must be non-negative");
}

double
SvrRegressor::kernel(std::span<const double> a,
                     std::span<const double> b) const
{
    mtperf_assert(a.size() == b.size(), "kernel dimension mismatch");
    if (options_.kernel == SvrKernel::Linear) {
        double dot = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i)
            dot += a[i] * b[i];
        return dot;
    }
    double dist2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist2 += d * d;
    }
    return std::exp(-gamma_ * dist2);
}

void
SvrRegressor::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("SVR: empty training set");

    standardizer_.fit(train);
    gamma_ = options_.gamma > 0.0
                 ? options_.gamma
                 : 1.0 / static_cast<double>(train.numAttributes());

    // Subsample when the kernel cache would not fit; deterministic so
    // experiments reproduce.
    std::vector<std::size_t> rows(train.size());
    std::iota(rows.begin(), rows.end(), 0);
    if (rows.size() > kMaxTrainRows) {
        Rng rng(0x5f3759df);
        rng.shuffle(rows);
        rows.resize(kMaxTrainRows);
    }

    const std::size_t n = rows.size();
    vectors_.assign(n, {});
    std::vector<double> targets(n);
    for (std::size_t i = 0; i < n; ++i) {
        standardizer_.transformRow(train.row(rows[i]), vectors_[i]);
        targets[i] = standardizer_.transformTarget(train.target(rows[i]));
    }

    // Bias-augmented kernel K' = K + 1 regularizes the bias term and
    // removes the equality constraint, so single-variable analytic
    // updates (dual coordinate descent) solve the problem exactly.
    std::vector<float> k(n * n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const auto v = static_cast<float>(
                kernel(vectors_[i], vectors_[j]) + 1.0);
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }

    beta_.assign(n, 0.0);
    bias_ = 0.0;
    std::vector<double> f(n, 0.0); // current decision values

    Rng rng(0x2545f491);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);

    const double c = options_.c;
    const double eps = options_.epsilon;
    std::size_t updates = 0;
    for (std::size_t sweep = 0; sweep < 1000; ++sweep) {
        rng.shuffle(order);
        double max_delta = 0.0;
        for (std::size_t idx : order) {
            const double h = k[idx * n + idx];
            if (h <= 0.0)
                continue;
            // Residual excluding i's own contribution, then the
            // soft-thresholded unconstrained minimizer, clamped to
            // the box [-C, C].
            const double r = targets[idx] - (f[idx] - h * beta_[idx]);
            double nb = 0.0;
            if (r > eps)
                nb = (r - eps) / h;
            else if (r < -eps)
                nb = (r + eps) / h;
            nb = std::clamp(nb, -c, c);

            const double delta = nb - beta_[idx];
            if (delta == 0.0)
                continue;
            beta_[idx] = nb;
            const float *k_row = k.data() + idx * n;
            for (std::size_t j = 0; j < n; ++j)
                f[j] += delta * k_row[j];
            max_delta = std::max(max_delta, std::abs(delta));
            if (++updates >= options_.maxPasses)
                break;
        }
        if (max_delta < options_.tolerance * c ||
            updates >= options_.maxPasses) {
            break;
        }
    }

    // Compact to support vectors only; prediction cost scales with
    // the number of nonzero betas.
    std::vector<std::vector<double>> sv;
    std::vector<double> sv_beta;
    for (std::size_t i = 0; i < n; ++i) {
        if (beta_[i] != 0.0) {
            sv.push_back(std::move(vectors_[i]));
            sv_beta.push_back(beta_[i]);
        }
    }
    vectors_ = std::move(sv);
    beta_ = std::move(sv_beta);
}

double
SvrRegressor::decision(std::span<const double> x) const
{
    double acc = bias_;
    for (std::size_t i = 0; i < vectors_.size(); ++i)
        acc += beta_[i] * (kernel(vectors_[i], x) + 1.0);
    return acc;
}

double
SvrRegressor::predict(std::span<const double> row) const
{
    mtperf_assert(standardizer_.fitted(), "predict() before fit()");
    std::vector<double> x;
    standardizer_.transformRow(row, x);
    return standardizer_.inverseTarget(decision(x));
}

std::size_t
SvrRegressor::numSupportVectors() const
{
    return beta_.size();
}

} // namespace mtperf
