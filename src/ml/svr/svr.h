/**
 * @file
 * Epsilon-insensitive support-vector regression (the SVM comparator).
 *
 * Solves the epsilon-SVR dual with analytic single-variable updates
 * over the bias-augmented kernel (K + 1), i.e., SMO-style dual
 * coordinate descent in the spirit of the Shevade/Keerthi SMO
 * improvements the paper cites. Regularizing the bias removes the
 * equality constraint, so each one-variable subproblem has the closed
 * soft-thresholding solution. Inputs and target are standardized;
 * RBF and linear kernels are provided.
 */

#ifndef MTPERF_ML_SVR_SVR_H_
#define MTPERF_ML_SVR_SVR_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/transform.h"
#include "ml/regressor.h"

namespace mtperf {

/** Kernel choice for SvrRegressor. */
enum class SvrKernel { Rbf, Linear };

/** Hyper-parameters for SvrRegressor. */
struct SvrOptions
{
    SvrKernel kernel = SvrKernel::Rbf;
    double c = 10.0;          //!< box constraint
    double epsilon = 0.05;    //!< insensitive-tube half-width (std units)
    double gamma = 0.0;       //!< RBF width; 0 means 1 / numAttributes
    double tolerance = 1e-3;  //!< KKT violation tolerance
    std::size_t maxPasses = 200000; //!< SMO iteration cap
};

/** Support-vector regressor trained with SMO. */
class SvrRegressor : public Regressor
{
  public:
    explicit SvrRegressor(SvrOptions options = {});

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "SVR"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<SvrRegressor>(options_);
    }

    /** Number of support vectors (nonzero beta) after training. */
    std::size_t numSupportVectors() const;

  private:
    double kernel(std::span<const double> a, std::span<const double> b) const;
    double decision(std::span<const double> x) const;

    SvrOptions options_;
    Standardizer standardizer_;
    double gamma_ = 1.0;
    std::vector<std::vector<double>> vectors_; //!< standardized train rows
    std::vector<double> beta_;  //!< alpha - alpha*, one per train row
    double bias_ = 0.0;
};

} // namespace mtperf

#endif // MTPERF_ML_SVR_SVR_H_
