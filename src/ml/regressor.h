/**
 * @file
 * The common interface all regression learners implement.
 *
 * The evaluation harness (cross-validation, model-comparison benches)
 * drives every learner — M5', CART, MLP, SVR, k-NN, linear regression,
 * the first-order penalty model — through this interface.
 */

#ifndef MTPERF_ML_REGRESSOR_H_
#define MTPERF_ML_REGRESSOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace mtperf {

/** Abstract regression learner: fit on a Dataset, predict per row. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /**
     * Train on @p train, replacing any previous state.
     * @throw FatalError on an empty or degenerate training set.
     */
    virtual void fit(const Dataset &train) = 0;

    /**
     * Predict the target for one attribute row.
     * @pre fit() has been called; the row matches the training schema.
     */
    virtual double predict(std::span<const double> row) const = 0;

    /**
     * Predict a batch of rows stored back to back: @p rows holds
     * out.size() rows of @p width values each, row-major, and
     * prediction r is written to out[r]. The default implementation is
     * the plain per-row loop; learners with cheap parallel evaluation
     * (M5', BaggedM5) override it to fan the batch out over the thread
     * pool. Every override must produce output bit-identical to the
     * per-row loop, so serving and offline evaluation agree exactly.
     */
    virtual void
    predictBatch(std::span<const double> rows, std::size_t width,
                 std::span<double> out) const
    {
        for (std::size_t r = 0; r < out.size(); ++r)
            out[r] = predict(rows.subspan(r * width, width));
    }

    /**
     * Create a fresh, untrained learner with this learner's
     * configuration (hyper-parameters). Fitted state is NOT copied —
     * training is deterministic for every learner in the library, so
     * a caller needing a trained copy clones and refits. This is what
     * lets the evaluation layer train one independent instance per
     * cross-validation fold concurrently.
     */
    virtual std::unique_ptr<Regressor> clone() const = 0;

    /** Short human-readable learner name for reports. */
    virtual std::string name() const = 0;

    /** Predict every row of @p ds (convenience for evaluation). */
    std::vector<double>
    predictAll(const Dataset &ds) const
    {
        std::vector<double> out(ds.size());
        if (!ds.empty())
            predictBatch(ds.flatValues(), ds.numAttributes(), out);
        return out;
    }
};

} // namespace mtperf

#endif // MTPERF_ML_REGRESSOR_H_
