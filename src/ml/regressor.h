/**
 * @file
 * The common interface all regression learners implement.
 *
 * The evaluation harness (cross-validation, model-comparison benches)
 * drives every learner — M5', CART, MLP, SVR, k-NN, linear regression,
 * the first-order penalty model — through this interface.
 */

#ifndef MTPERF_ML_REGRESSOR_H_
#define MTPERF_ML_REGRESSOR_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace mtperf {

/** Abstract regression learner: fit on a Dataset, predict per row. */
class Regressor
{
  public:
    virtual ~Regressor() = default;

    /**
     * Train on @p train, replacing any previous state.
     * @throw FatalError on an empty or degenerate training set.
     */
    virtual void fit(const Dataset &train) = 0;

    /**
     * Predict the target for one attribute row.
     * @pre fit() has been called; the row matches the training schema.
     */
    virtual double predict(std::span<const double> row) const = 0;

    /**
     * Create a fresh, untrained learner with this learner's
     * configuration (hyper-parameters). Fitted state is NOT copied —
     * training is deterministic for every learner in the library, so
     * a caller needing a trained copy clones and refits. This is what
     * lets the evaluation layer train one independent instance per
     * cross-validation fold concurrently.
     */
    virtual std::unique_ptr<Regressor> clone() const = 0;

    /** Short human-readable learner name for reports. */
    virtual std::string name() const = 0;

    /** Predict every row of @p ds (convenience for evaluation). */
    std::vector<double>
    predictAll(const Dataset &ds) const
    {
        std::vector<double> out;
        out.reserve(ds.size());
        for (std::size_t r = 0; r < ds.size(); ++r)
            out.push_back(predict(ds.row(r)));
        return out;
    }
};

} // namespace mtperf

#endif // MTPERF_ML_REGRESSOR_H_
