#include "ml/tree/split_search.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mtperf {

void
scanSplitCandidates(std::span<const double> keys,
                    std::span<const double> targets, std::size_t attr,
                    std::size_t min_instances, SplitChoice &best)
{
    const std::size_t n = keys.size();
    if (n == 0 || keys.front() == keys.back())
        return; // constant attribute at this node

    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total_sum += targets[i];
        total_sq += targets[i] * targets[i];
    }
    const auto dn = static_cast<double>(n);
    const double sd_all = std::sqrt(std::max(
        0.0, total_sq / dn - (total_sum / dn) * (total_sum / dn)));

    for (std::size_t i = 0; i + 1 < n; ++i) {
        left_sum += targets[i];
        left_sq += targets[i] * targets[i];
        const std::size_t nl = i + 1;
        const std::size_t nr = n - nl;
        if (nl < min_instances || nr < min_instances)
            continue;
        if (keys[i] == keys[i + 1])
            continue; // not a boundary between distinct values

        const auto dl = static_cast<double>(nl);
        const auto dr = static_cast<double>(nr);
        const double right_sum = total_sum - left_sum;
        const double right_sq = total_sq - left_sq;
        const double sd_l = std::sqrt(std::max(
            0.0, left_sq / dl - (left_sum / dl) * (left_sum / dl)));
        const double sd_r = std::sqrt(std::max(
            0.0, right_sq / dr - (right_sum / dr) * (right_sum / dr)));
        const double sdr = sd_all - (dl / dn) * sd_l - (dr / dn) * sd_r;
        const double value = 0.5 * (keys[i] + keys[i + 1]);
        if (splitBeats(best, sdr, attr, value)) {
            best.valid = true;
            best.sdr = sdr;
            best.attr = attr;
            best.value = value;
        }
    }
}

SplitChoice
bruteForceBestSplit(const Dataset &ds, std::span<const std::size_t> rows,
                    std::size_t min_instances)
{
    SplitChoice best;
    const std::size_t n = rows.size();
    std::vector<std::size_t> sorted(rows.begin(), rows.end());
    std::vector<double> keys(n), targets(n);

    for (std::size_t attr = 0; attr < ds.numAttributes(); ++attr) {
        std::sort(sorted.begin(), sorted.end(),
                  [&ds, attr](std::size_t a, std::size_t b) {
                      const double va = ds.value(a, attr);
                      const double vb = ds.value(b, attr);
                      if (va != vb)
                          return va < vb;
                      return a < b; // stable: row position breaks ties
                  });
        for (std::size_t i = 0; i < n; ++i) {
            keys[i] = ds.value(sorted[i], attr);
            targets[i] = ds.target(sorted[i]);
        }
        scanSplitCandidates(keys, targets, attr, min_instances, best);
    }
    return best;
}

void
PresortedColumns::build(const Dataset &ds)
{
    const std::size_t n = ds.size();
    const std::size_t d = ds.numAttributes();
    mtperf_assert(n < (std::size_t{1} << 32),
                  "presorted split search caps at 2^32 rows");

    goesLeft_.assign(n, 0);
    scratch_.resize(n);
    keys_.resize(n);
    targets_.resize(n);

    // Work on the raw row-major block: sort comparators and gather
    // loops run millions of iterations, so per-element accessor calls
    // (with their bounds asserts) dominate if left in the loop.
    const double *flat = ds.flatValues().data();
    cols_.assign(d, {});
    for (std::size_t attr = 0; attr < d; ++attr) {
        auto &col = cols_[attr];
        col.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            col[i] = static_cast<std::uint32_t>(i);
            keys_[i] = flat[i * d + attr];
        }
        const double *keys = keys_.data();
        std::sort(col.begin(), col.end(),
                  [keys](std::uint32_t a, std::uint32_t b) {
                      const double va = keys[a];
                      const double vb = keys[b];
                      if (va != vb)
                          return va < vb;
                      return a < b; // stable: row id breaks ties
                  });
    }
}

SplitChoice
PresortedColumns::bestSplit(const Dataset &ds, std::size_t lo,
                            std::size_t hi, std::size_t min_instances)
{
    mtperf_assert(built() && hi <= size() && lo <= hi,
                  "bestSplit over an invalid presorted range");
    SplitChoice best;
    const std::size_t n = hi - lo;
    const std::size_t d = cols_.size();
    const double *flat = ds.flatValues().data();
    const double *tgt = ds.targets().data();
    for (std::size_t attr = 0; attr < d; ++attr) {
        const std::uint32_t *col = cols_[attr].data() + lo;
        for (std::size_t i = 0; i < n; ++i) {
            keys_[i] = flat[col[i] * d + attr];
            targets_[i] = tgt[col[i]];
        }
        scanSplitCandidates({keys_.data(), n}, {targets_.data(), n},
                            attr, min_instances, best);
    }
    return best;
}

std::size_t
PresortedColumns::partition(const Dataset &ds, std::size_t lo,
                            std::size_t hi, std::size_t attr,
                            double value)
{
    mtperf_assert(built() && hi <= size() && lo <= hi,
                  "partition over an invalid presorted range");
    // Mark membership once; each column is then split by a stable
    // two-way pass (left rows compact in place, right rows spill to
    // the scratch buffer and copy back), preserving the (value, row)
    // order inside both halves.
    const std::size_t d = cols_.size();
    const double *flat = ds.flatValues().data();
    std::size_t n_left = 0;
    for (std::size_t i = lo; i < hi; ++i) {
        const std::uint32_t r = cols_[attr][i];
        const bool left = flat[r * d + attr] <= value;
        goesLeft_[r] = left ? 1 : 0;
        n_left += left ? 1 : 0;
    }
    for (auto &col : cols_) {
        std::size_t out = lo;
        std::size_t spilled = 0;
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint32_t r = col[i];
            if (goesLeft_[r])
                col[out++] = r;
            else
                scratch_[spilled++] = r;
        }
        std::copy(scratch_.begin(),
                  scratch_.begin() +
                      static_cast<std::ptrdiff_t>(spilled),
                  col.begin() + static_cast<std::ptrdiff_t>(out));
    }
    return lo + n_left;
}

} // namespace mtperf
