/**
 * @file
 * A CART-style piecewise-constant regression tree baseline.
 *
 * The paper contrasts model trees with classical regression trees
 * (Breiman et al. 1984), which predict a constant at each leaf. This
 * implementation grows by variance reduction and prunes bottom-up
 * with the same pessimistic error estimate M5 uses, so the comparison
 * isolates exactly the leaf-model difference.
 */

#ifndef MTPERF_ML_TREE_REGRESSION_TREE_H_
#define MTPERF_ML_TREE_REGRESSION_TREE_H_

#include <memory>
#include <span>
#include <string>

#include "data/dataset.h"
#include "ml/regressor.h"

namespace mtperf {

/** Tunables for the CART baseline. */
struct RegressionTreeOptions
{
    std::size_t minInstances = 4;  //!< minimum rows on each split side
    double sdFraction = 0.05;      //!< purity stop vs. root deviation
    bool prune = true;             //!< bottom-up pessimistic pruning
    std::size_t maxDepth = 0;      //!< 0 = unlimited
};

/** Piecewise-constant regression tree. */
class RegressionTree : public Regressor
{
  public:
    explicit RegressionTree(RegressionTreeOptions options = {});
    ~RegressionTree() override;

    RegressionTree(RegressionTree &&) noexcept;
    RegressionTree &operator=(RegressionTree &&) noexcept;
    RegressionTree(const RegressionTree &) = delete;
    RegressionTree &operator=(const RegressionTree &) = delete;

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "RegressionTree"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<RegressionTree>(options_);
    }

    /** Number of leaves after pruning. */
    std::size_t numLeaves() const;

  private:
    struct Node;
    struct GrowCtx; //!< presorted split-search state (regression_tree.cc)

    /** Raw residual and parameter count of a (sub)tree, for pruning. */
    struct SubtreeCost
    {
        double rawMae = 0.0;
        std::size_t parameters = 0;
    };

    void growNode(Node &node, std::vector<std::size_t> &rows,
                  std::size_t lo, std::size_t hi, std::size_t depth,
                  GrowCtx &ctx);
    SubtreeCost pruneNode(Node &node);

    RegressionTreeOptions options_;
    std::unique_ptr<Node> root_;
    const Dataset *trainData_ = nullptr;
    double rootSd_ = 0.0;
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_REGRESSION_TREE_H_
