/**
 * @file
 * M5Rules-style decision-list learner.
 *
 * The paper observes that M5' "partitioning generates ordered rules
 * for reaching the leaf node models". M5Rules (Holmes, Hall & Frank
 * 1999) makes that explicit: repeatedly build an M5 tree, keep only
 * the best leaf as an IF-conditions-THEN-linear-model rule, remove
 * the instances it covers, and repeat until everything is covered.
 * The result is an ordered rule list that is often even easier to
 * read than the tree, with comparable accuracy.
 */

#ifndef MTPERF_ML_TREE_M5RULES_H_
#define MTPERF_ML_TREE_M5RULES_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/linear/linear_model.h"
#include "ml/regressor.h"
#include "ml/tree/m5prime.h"

namespace mtperf {

/** One IF-THEN rule of the decision list. */
struct M5Rule
{
    /** Conjunction of attribute tests (empty for the default rule). */
    std::vector<PathStep> conditions;
    /** Model applied when the conditions hold. */
    LinearModel model;
    /** Training instances the rule covered when it was extracted. */
    std::size_t covered = 0;

    /** True if @p row satisfies every condition. */
    bool matches(std::span<const double> row) const;

    /** Render as "IF a > x and b <= y THEN <model>". */
    std::string toString(const Schema &schema, int digits = 4) const;
};

/** Tunables for the rule learner. */
struct M5RulesOptions
{
    /** Tree options used for each intermediate tree. */
    M5Options treeOptions{};
    /** Hard cap on extracted rules (0 = unlimited). */
    std::size_t maxRules = 0;
};

/**
 * Ordered rule list built by repeated M5' tree construction
 * (separate-and-conquer).
 */
class M5Rules : public Regressor
{
  public:
    explicit M5Rules(M5RulesOptions options = {});

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "M5Rules"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<M5Rules>(options_);
    }

    /** The learned decision list, in application order. */
    const std::vector<M5Rule> &rules() const { return rules_; }

    /** Index of the first rule matching @p row. */
    std::size_t ruleIndexFor(std::span<const double> row) const;

    /** Human-readable listing of the whole decision list. */
    std::string toString() const;

  private:
    M5RulesOptions options_;
    Schema schema_;
    std::vector<M5Rule> rules_;
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_M5RULES_H_
