/**
 * @file
 * SDR split search shared by the tree learners.
 *
 * Both M5' and the plain regression tree pick splits by maximizing the
 * standard-deviation reduction
 *
 *   SDR = sd(T) - |T_l|/|T| * sd(T_l) - |T_r|/|T| * sd(T_r)
 *
 * over every (attribute, boundary-between-distinct-values) candidate.
 * Two implementations of the same search live here:
 *
 *  - bruteForceBestSplit() sorts the node's rows per attribute on
 *    every call — O(d * n log n) per node. It is the reference
 *    implementation the property tests compare against.
 *  - PresortedColumns sorts each feature column exactly once (at the
 *    tree root) into per-attribute row-index arrays and then *stably
 *    partitions* those arrays down the tree at each split (the CART
 *    presort trick), so every later node's search is a single O(d * n)
 *    scan with no sorting at all.
 *
 * Deterministic ordering contract (relied on by the byte-identity
 * tests and documented in DESIGN.md §11):
 *
 *  - Rows are scanned per attribute in (value ascending, row position
 *    ascending) order; all prefix sums accumulate in that order, so
 *    the chosen split is a pure function of the node's row set.
 *  - Candidate thresholds exist only at boundaries between distinct
 *    attribute values and are the midpoint 0.5 * (v_i + v_{i+1}).
 *  - Ties on SDR break to the lowest attribute index, then to the
 *    lowest threshold (see splitBeats()).
 */

#ifndef MTPERF_ML_TREE_SPLIT_SEARCH_H_
#define MTPERF_ML_TREE_SPLIT_SEARCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace mtperf {

/** Winning split of one SDR search (invalid when no candidate exists). */
struct SplitChoice
{
    bool valid = false;
    std::size_t attr = 0;
    double value = 0.0;
    double sdr = -1.0;
};

/**
 * Tie-breaking order for split candidates: higher SDR wins; on equal
 * SDR the lower attribute index wins; on equal attribute the lower
 * threshold wins. Scanning attributes ascending and thresholds
 * ascending makes this equivalent to a strict "sdr > best.sdr" test,
 * but spelling it out keeps the contract explicit (and testable).
 */
inline bool
splitBeats(const SplitChoice &best, double sdr, std::size_t attr,
           double value)
{
    if (!best.valid)
        return true;
    if (sdr != best.sdr)
        return sdr > best.sdr;
    if (attr != best.attr)
        return attr < best.attr;
    return value < best.value;
}

/**
 * Scan one attribute's rows, already gathered in (value ascending,
 * row position ascending) order, and fold the best boundary into
 * @p best. Shared by both search implementations so their arithmetic
 * is identical operation-for-operation.
 */
void scanSplitCandidates(std::span<const double> keys,
                         std::span<const double> targets,
                         std::size_t attr, std::size_t min_instances,
                         SplitChoice &best);

/**
 * Reference O(d * n log n) search: stably sorts @p rows by each
 * attribute (value, then row position) and scans every boundary.
 */
SplitChoice bruteForceBestSplit(const Dataset &ds,
                                std::span<const std::size_t> rows,
                                std::size_t min_instances);

/**
 * Presorted per-attribute row-index columns over a whole training
 * set, partitioned in place down the tree. Usage:
 *
 *   PresortedColumns cols;
 *   cols.build(ds);                         // once, at the root
 *   SplitChoice c = cols.bestSplit(ds, lo, hi, min_instances);
 *   std::size_t mid = cols.partition(ds, lo, hi, c.attr, c.value);
 *   // left child owns [lo, mid), right child owns [mid, hi)
 *
 * partition() is stable, so every column stays in (value, row
 * position) order within each child range forever — bestSplit() never
 * sorts again. Not thread-safe; one instance serves one tree fit.
 */
class PresortedColumns
{
  public:
    /** Sort every feature column of @p ds; O(d * n log n), once. */
    void build(const Dataset &ds);

    bool built() const { return !cols_.empty(); }

    /** Number of rows covered (the full training set). */
    std::size_t size() const { return goesLeft_.size(); }

    /** Best split over the rows in range [lo, hi) of every column. */
    SplitChoice bestSplit(const Dataset &ds, std::size_t lo,
                          std::size_t hi, std::size_t min_instances);

    /**
     * Stably split range [lo, hi) of every column on
     * value(row, attr) <= value.
     * @return mid such that rows going left now occupy [lo, mid).
     */
    std::size_t partition(const Dataset &ds, std::size_t lo,
                          std::size_t hi, std::size_t attr, double value);

    /** Row ids of column @p attr in (value, row) order (for tests). */
    std::span<const std::uint32_t> column(std::size_t attr) const
    {
        return cols_[attr];
    }

  private:
    std::vector<std::vector<std::uint32_t>> cols_;
    std::vector<std::uint8_t> goesLeft_;  //!< indexed by row id
    std::vector<std::uint32_t> scratch_;  //!< right-side spill buffer
    std::vector<double> keys_;            //!< gathered attribute values
    std::vector<double> targets_;         //!< gathered target values
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_SPLIT_SEARCH_H_
