#include "ml/tree/m5rules.h"

#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace mtperf {

bool
M5Rule::matches(std::span<const double> row) const
{
    for (const auto &step : conditions) {
        const bool right = row[step.attr] > step.value;
        if (right != step.goesRight)
            return false;
    }
    return true;
}

std::string
M5Rule::toString(const Schema &schema, int digits) const
{
    std::ostringstream os;
    if (conditions.empty()) {
        os << "OTHERWISE ";
    } else {
        os << "IF ";
        for (std::size_t i = 0; i < conditions.size(); ++i) {
            const auto &step = conditions[i];
            if (i)
                os << " and ";
            os << schema.attributeName(step.attr)
               << (step.goesRight ? " > " : " <= ")
               << formatDouble(step.value, digits);
        }
        os << " THEN ";
    }
    os << model.toString(schema, digits) << "  [" << covered
       << " instances]";
    return os.str();
}

M5Rules::M5Rules(M5RulesOptions options) : options_(std::move(options))
{
}

void
M5Rules::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("M5Rules: empty training set");
    schema_ = train.schema();
    rules_.clear();

    std::vector<std::size_t> remaining(train.size());
    std::iota(remaining.begin(), remaining.end(), 0);

    // Separate-and-conquer: grow a tree on what is left, harvest the
    // best-covering leaf as a rule, discard the covered instances.
    while (!remaining.empty()) {
        const bool rule_budget_spent =
            options_.maxRules != 0 && rules_.size() + 1 ==
                                          options_.maxRules;
        const bool too_small =
            remaining.size() < 2 * options_.treeOptions.minInstances;

        Dataset subset = train.subset(remaining);
        if (rule_budget_spent || too_small) {
            M5Rule default_rule;
            std::vector<std::size_t> rows(subset.size());
            std::iota(rows.begin(), rows.end(), 0);
            std::vector<std::size_t> attrs(subset.numAttributes());
            std::iota(attrs.begin(), attrs.end(), 0);
            default_rule.model = LinearModel::fit(subset, rows, attrs);
            if (options_.treeOptions.simplifyModels)
                default_rule.model.simplify(subset, rows);
            default_rule.covered = subset.size();
            rules_.push_back(std::move(default_rule));
            return;
        }

        M5Prime tree(options_.treeOptions);
        tree.fit(subset);

        if (tree.numLeaves() == 1) {
            M5Rule default_rule;
            default_rule.model = tree.leafModel(0);
            default_rule.covered = subset.size();
            rules_.push_back(std::move(default_rule));
            return;
        }

        // WEKA's default heuristic: take the leaf covering the most
        // instances.
        std::size_t best_leaf = 0;
        for (std::size_t leaf = 1; leaf < tree.numLeaves(); ++leaf) {
            if (tree.leafInfo(leaf).count >
                tree.leafInfo(best_leaf).count) {
                best_leaf = leaf;
            }
        }

        M5Rule rule;
        rule.conditions = tree.leafInfo(best_leaf).path;
        rule.model = tree.leafModel(best_leaf);
        rule.covered = tree.leafInfo(best_leaf).count;
        rules_.push_back(rule);

        std::vector<std::size_t> still_remaining;
        still_remaining.reserve(remaining.size() - rule.covered);
        for (std::size_t idx : remaining) {
            if (!rules_.back().matches(train.row(idx)))
                still_remaining.push_back(idx);
        }
        mtperf_assert(still_remaining.size() < remaining.size(),
                      "rule extraction made no progress");
        remaining = std::move(still_remaining);
    }
}

double
M5Rules::predict(std::span<const double> row) const
{
    mtperf_assert(!rules_.empty(), "predict() before fit()");
    return rules_[ruleIndexFor(row)].model.predict(row);
}

std::size_t
M5Rules::ruleIndexFor(std::span<const double> row) const
{
    mtperf_assert(!rules_.empty(), "ruleIndexFor() before fit()");
    for (std::size_t i = 0; i < rules_.size(); ++i) {
        if (rules_[i].matches(row))
            return i;
    }
    // No default rule fired (possible when maxRules truncated the
    // list): fall back to the last rule's model.
    return rules_.size() - 1;
}

std::string
M5Rules::toString() const
{
    std::ostringstream os;
    os << "M5Rules decision list (" << rules_.size() << " rules)\n";
    for (std::size_t i = 0; i < rules_.size(); ++i)
        os << "Rule " << (i + 1) << ": " << rules_[i].toString(schema_)
           << "\n";
    return os.str();
}

} // namespace mtperf
