/**
 * @file
 * Flat, cache-friendly compilation of a fitted model tree.
 *
 * M5Prime's pointer tree is ideal for construction and introspection
 * but hostile to batch inference: every row chases unique_ptr children
 * across the heap, and every leaf prediction virtual-dispatches into a
 * LinearModel holding its terms in yet another allocation. FlatTree
 * compiles the fitted structure once (after fit() or load()) into
 * structure-of-arrays form:
 *
 *  - interior nodes: parallel arrays of split attribute, threshold,
 *    and child references (a non-negative reference is a node index,
 *    a negative one encodes a leaf as ~leafIndex);
 *  - leaves: one intercept per leaf plus all linear-model terms
 *    flattened into contiguous (attr, coef) arrays sliced by a
 *    per-leaf [termStart, termStart+termCount) range.
 *
 * predictBlock then runs level-by-level descent over a whole block of
 * rows (each row holds a current-reference cursor; one pass moves
 * every still-descending row one level down) followed by leaf-grouped,
 * term-major linear-model evaluation: rows landing in the same leaf
 * are evaluated together, one (attr, coef) term at a time, over a
 * contiguous accumulator array — the loops the compiler can keep in
 * registers and vectorize.
 *
 * Determinism contract: for every row the arithmetic is exactly
 * `intercept + sum(coef_i * row[attr_i])` in stored term order — the
 * same operations, in the same order, as the scalar walk through
 * M5Prime::predict -> LinearModel::predict — so batch results are
 * bit-identical to scalar results at any block size or thread count.
 */

#ifndef MTPERF_ML_TREE_FLAT_TREE_H_
#define MTPERF_ML_TREE_FLAT_TREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/linear/linear_model.h"

namespace mtperf {

/** Flat-array compilation of a fitted model tree (see file comment). */
class FlatTree
{
  public:
    /**
     * A child/root reference: >= 0 is an interior-node index, < 0
     * encodes leaf `~ref`.
     */
    using Ref = std::int32_t;

    /**
     * Incremental constructor used by the tree owner, which knows the
     * pointer structure; FlatTree itself never sees a Node. Defined
     * after the class (it holds a FlatTree by value).
     */
    class Builder;

    FlatTree() = default;

    std::size_t numNodes() const { return splitAttr_.size(); }
    std::size_t numLeaves() const { return intercept_.size(); }

    /**
     * Predict @p n rows (row-major, @p width values each) into
     * @p out. Bit-identical to the scalar root-to-leaf walk.
     */
    void predictBlock(const double *rows, std::size_t width,
                      std::size_t n, double *out) const;

    /** Leaf index reached by each of @p n rows, into @p out. */
    void leafBlock(const double *rows, std::size_t width, std::size_t n,
                   std::uint32_t *out) const;

  private:
    /**
     * Per-block scratch ceiling: descent cursors and leaf grouping
     * live on the stack, so callers must not exceed it.
     */
    static constexpr std::size_t kMaxBlock = 1024;

    void descend(const double *rows, std::size_t width, std::size_t n,
                 Ref *cursor) const;

    Ref root_ = ~Ref{0};

    // Interior nodes, structure-of-arrays.
    std::vector<std::uint32_t> splitAttr_;
    std::vector<double> splitValue_;
    std::vector<Ref> left_;
    std::vector<Ref> right_;

    // Leaves: intercepts plus flattened model terms.
    std::vector<double> intercept_;
    std::vector<std::uint32_t> termStart_;
    std::vector<std::uint32_t> termCount_;
    std::vector<std::uint32_t> termAttr_;
    std::vector<double> termCoef_;
};

class FlatTree::Builder
{
  public:
    /** Append an interior node; children are patched in later. */
    Ref addSplit(std::size_t attr, double value);

    /** Append a leaf carrying @p model. @return its leaf ref. */
    Ref addLeaf(const LinearModel &model);

    /** Patch the children of interior node @p node. */
    void setChildren(Ref node, Ref left, Ref right);

    /** @param root the reference of the tree's root. */
    FlatTree build(Ref root) &&;

  private:
    FlatTree tree_;
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_FLAT_TREE_H_
