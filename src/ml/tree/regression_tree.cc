#include "ml/tree/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "ml/tree/split_search.h"

namespace mtperf {

struct RegressionTree::Node
{
    bool leaf = true;
    std::size_t splitAttr = 0;
    double splitValue = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;

    std::vector<std::size_t> rows;
    std::size_t count = 0;
    double meanTarget = 0.0;
    double sdTarget = 0.0;
};

struct RegressionTree::GrowCtx
{
    PresortedColumns cols;
};

RegressionTree::RegressionTree(RegressionTreeOptions options)
    : options_(options)
{
    if (options_.minInstances < 1)
        mtperf_fatal("RegressionTree: minInstances must be >= 1");
}

RegressionTree::~RegressionTree() = default;
RegressionTree::RegressionTree(RegressionTree &&) noexcept = default;
RegressionTree &
RegressionTree::operator=(RegressionTree &&) noexcept = default;

void
RegressionTree::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("RegressionTree: empty training set");
    trainData_ = &train;

    std::vector<std::size_t> rows(train.size());
    std::iota(rows.begin(), rows.end(), 0);

    double sum = 0.0, sq = 0.0;
    for (std::size_t r : rows) {
        sum += train.target(r);
        sq += train.target(r) * train.target(r);
    }
    const auto n = static_cast<double>(rows.size());
    rootSd_ = std::sqrt(std::max(0.0, sq / n - (sum / n) * (sum / n)));

    root_ = std::make_unique<Node>();
    GrowCtx ctx;
    growNode(*root_, rows, 0, train.size(), 0, ctx);
    if (options_.prune)
        pruneNode(*root_);

    struct Scrubber
    {
        static void
        scrub(Node &node)
        {
            node.rows.clear();
            node.rows.shrink_to_fit();
            if (node.left)
                scrub(*node.left);
            if (node.right)
                scrub(*node.right);
        }
    };
    Scrubber::scrub(*root_);
    trainData_ = nullptr;
}

void
RegressionTree::growNode(Node &node, std::vector<std::size_t> &rows,
                         std::size_t lo, std::size_t hi,
                         std::size_t depth, GrowCtx &ctx)
{
    const Dataset &ds = *trainData_;
    node.count = rows.size();

    double sum = 0.0, sq = 0.0;
    for (std::size_t r : rows) {
        sum += ds.target(r);
        sq += ds.target(r) * ds.target(r);
    }
    const auto dn = static_cast<double>(rows.size());
    node.meanTarget = sum / dn;
    node.sdTarget = std::sqrt(
        std::max(0.0, sq / dn - node.meanTarget * node.meanTarget));

    const bool too_small = rows.size() < 2 * options_.minInstances ||
                           rows.size() < 4;
    const bool pure = node.sdTarget < options_.sdFraction * rootSd_;
    const bool too_deep =
        options_.maxDepth != 0 && depth >= options_.maxDepth;
    if (too_small || pure || too_deep) {
        node.rows = std::move(rows);
        return;
    }

    // Same presort-once, partition-down scheme as M5Prime::growNode
    // (see split_search.h for the ordering contract).
    if (!ctx.cols.built())
        ctx.cols.build(ds);
    const SplitChoice best =
        ctx.cols.bestSplit(ds, lo, hi, options_.minInstances);

    if (!best.valid) {
        node.rows = std::move(rows);
        return;
    }

    node.leaf = false;
    node.splitAttr = best.attr;
    node.splitValue = best.value;

    std::vector<std::size_t> left_rows, right_rows;
    for (std::size_t r : rows) {
        if (ds.value(r, best.attr) <= best.value)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    node.rows = std::move(rows);

    const std::size_t mid =
        ctx.cols.partition(ds, lo, hi, best.attr, best.value);
    mtperf_assert(mid - lo == left_rows.size(),
                  "presorted partition disagrees with the row split");

    node.left = std::make_unique<Node>();
    node.right = std::make_unique<Node>();
    growNode(*node.left, left_rows, lo, mid, depth + 1, ctx);
    growNode(*node.right, right_rows, mid, hi, depth + 1, ctx);
}

RegressionTree::SubtreeCost
RegressionTree::pruneNode(Node &node)
{
    const Dataset &ds = *trainData_;
    const auto n = static_cast<double>(node.count);

    auto raw_mae = [&ds](const Node &nd) {
        double mae = 0.0;
        for (std::size_t r : nd.rows)
            mae += std::abs(ds.target(r) - nd.meanTarget);
        return mae / static_cast<double>(nd.count);
    };
    // Pessimistic compensation charging v parameters (leaf means and
    // split thresholds in the subtree) against n instances.
    auto compensated = [n](double raw, std::size_t v) {
        const auto dv = static_cast<double>(v);
        if (n <= dv)
            return std::numeric_limits<double>::infinity();
        return (n + dv) / (n - dv) * raw;
    };

    if (node.leaf)
        return {raw_mae(node), 1};

    const SubtreeCost left = pruneNode(*node.left);
    const SubtreeCost right = pruneNode(*node.right);
    const auto nl = static_cast<double>(node.left->count);
    const auto nr = static_cast<double>(node.right->count);

    SubtreeCost subtree;
    subtree.rawMae = (nl * left.rawMae + nr * right.rawMae) / (nl + nr);
    subtree.parameters = left.parameters + right.parameters + 1;

    const double subtree_err =
        compensated(subtree.rawMae, subtree.parameters);
    const double node_err = compensated(raw_mae(node), 1);

    if (node_err <= subtree_err) {
        node.leaf = true;
        node.left.reset();
        node.right.reset();
        return {raw_mae(node), 1};
    }
    return subtree;
}

double
RegressionTree::predict(std::span<const double> row) const
{
    mtperf_assert(root_ != nullptr, "predict() before fit()");
    const Node *node = root_.get();
    while (!node->leaf) {
        node = row[node->splitAttr] <= node->splitValue ? node->left.get()
                                                        : node->right.get();
    }
    return node->meanTarget;
}

std::size_t
RegressionTree::numLeaves() const
{
    struct Counter
    {
        static std::size_t
        count(const Node &node)
        {
            if (node.leaf)
                return 1;
            return count(*node.left) + count(*node.right);
        }
    };
    mtperf_assert(root_ != nullptr, "numLeaves() before fit()");
    return Counter::count(*root_);
}

} // namespace mtperf
