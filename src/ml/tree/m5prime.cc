#include "ml/tree/m5prime.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <fstream>
#include <iterator>
#include <numeric>
#include <ostream>
#include <sstream>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "math/stats.h"
#include "ml/tree/flat_tree.h"
#include "ml/tree/split_search.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mtperf {

namespace {

/**
 * Guard a freshly fitted model against numeric blowup: a singular or
 * ill-conditioned regression can yield NaN/Inf coefficients, which
 * would poison every downstream prediction. Degrade to the node's
 * mean target (a constant model) instead — the same fallback M5'
 * already uses for leaves with no usable attributes.
 */
void
guardFiniteModel(LinearModel &model, double mean_target)
{
    bool finite = std::isfinite(model.intercept());
    for (const auto &term : model.terms())
        finite = finite && std::isfinite(term.coef);
    if (!finite) {
        model = LinearModel::constant(
            std::isfinite(mean_target) ? mean_target : 0.0);
    }
}

} // namespace

/** One tree node; leaves own their training rows until fit() ends. */
struct M5Prime::Node
{
    bool leaf = true;
    std::size_t splitAttr = 0;
    double splitValue = 0.0;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;

    std::vector<std::size_t> rows; //!< training rows reaching this node
    std::size_t count = 0;
    double meanTarget = 0.0;
    double sdTarget = 0.0;

    LinearModel model;
    double modelMae = 0.0; //!< model MAE over rows, cached for pruning
    std::vector<std::size_t> subtreeAttrs; //!< split attrs in this subtree
    int leafId = -1;
};

/** Presorted split-search state threaded through growNode. */
struct M5Prime::GrowCtx
{
    PresortedColumns cols;
};

/** Path bookkeeping threaded through buildModels. */
struct M5Prime::BuildCtx
{
    /** Occurrences of each attribute among the splits leading here. */
    std::vector<std::uint32_t> pathCount;
    std::size_t pathDepth = 0;
    /** Per-node presence scratch for building attribute lists. */
    std::vector<std::uint8_t> present;
};

namespace {

/** Mean and population standard deviation of targets over @p rows. */
void
targetStats(const Dataset &ds, const std::vector<std::size_t> &rows,
            double &mean_out, double &sd_out)
{
    double sum = 0.0, sq = 0.0;
    for (std::size_t r : rows) {
        const double y = ds.target(r);
        sum += y;
        sq += y * y;
    }
    const auto n = static_cast<double>(rows.size());
    mean_out = rows.empty() ? 0.0 : sum / n;
    const double var = rows.empty() ? 0.0 : std::max(0.0, sq / n -
                                                     mean_out * mean_out);
    sd_out = std::sqrt(var);
}

} // namespace

M5Prime::M5Prime(M5Options options) : options_(std::move(options))
{
    if (options_.minInstances < 1)
        mtperf_fatal("M5Prime: minInstances must be >= 1");
    if (options_.sdFraction < 0.0)
        mtperf_fatal("M5Prime: sdFraction must be >= 0");
    if (options_.smoothingK < 0.0)
        mtperf_fatal("M5Prime: smoothingK must be >= 0");
}

M5Prime::~M5Prime() = default;
M5Prime::M5Prime(M5Prime &&) noexcept = default;
M5Prime &M5Prime::operator=(M5Prime &&) noexcept = default;

void
M5Prime::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("M5Prime: empty training set");

    schema_ = train.schema();
    trainData_ = &train;
    trainSize_ = train.size();
    leaves_.clear();
    leafNodes_.clear();

    std::vector<std::size_t> all_rows(train.size());
    std::iota(all_rows.begin(), all_rows.end(), 0);

    root_ = std::make_unique<Node>();
    double root_mean = 0.0;
    targetStats(train, all_rows, root_mean, rootSd_);

    std::size_t grown_nodes = 0;
    {
        obs::ScopedSpan span("tree", "tree.grow");
        GrowCtx ctx;
        growNode(*root_, all_rows, 0, train.size(), 0, ctx);
        grown_nodes = numNodes();
    }
    {
        obs::ScopedSpan span("tree", "tree.build_models");
        BuildCtx ctx;
        ctx.pathCount.assign(train.numAttributes(), 0);
        ctx.present.assign(train.numAttributes(), 0);
        buildModels(*root_, ctx);
        // buildModels fits one linear model per node (interior nodes
        // need one for pruning's subtree-error comparison).
        obs::counter("tree.model_fits").add(grown_nodes);
    }
    {
        obs::ScopedSpan span("tree", "tree.prune");
        pruneNode(root_);
        obs::counter("tree.nodes_pruned").add(grown_nodes - numNodes());
    }
    if (options_.smooth && options_.smoothingK > 0.0) {
        obs::ScopedSpan span("tree", "tree.smooth");
        std::vector<const Node *> ancestors;
        smoothLeaves(*root_, ancestors);
    }

    std::vector<PathStep> path;
    collectLeaves(*root_, path);
    refreshSplitAttributes();
    buildFlatTree();

    obs::counter("tree.fits").increment();
    obs::counter("tree.nodes").add(numNodes());
    obs::counter("tree.leaves").add(numLeaves());

    // Release per-node training rows; predictions don't need them.
    struct Scrubber
    {
        static void
        scrub(Node &n)
        {
            n.rows.clear();
            n.rows.shrink_to_fit();
            n.subtreeAttrs.clear();
            if (n.left)
                scrub(*n.left);
            if (n.right)
                scrub(*n.right);
        }
    };
    Scrubber::scrub(*root_);
    trainData_ = nullptr;
}

void
M5Prime::growNode(Node &node, std::vector<std::size_t> &rows,
                  std::size_t lo, std::size_t hi, std::size_t depth,
                  GrowCtx &ctx)
{
    const Dataset &ds = *trainData_;
    node.count = rows.size();
    targetStats(ds, rows, node.meanTarget, node.sdTarget);

    const bool too_small = rows.size() < 2 * options_.minInstances ||
                           rows.size() < 4;
    const bool pure = node.sdTarget < options_.sdFraction * rootSd_;
    const bool too_deep =
        options_.maxDepth != 0 && depth >= options_.maxDepth;
    if (too_small || pure || too_deep) {
        node.leaf = true;
        node.rows = std::move(rows);
        return;
    }

    // Split search over presorted columns: each feature column is
    // sorted once (lazily, at the root — the first node to search)
    // and stably partitioned down the tree, so every non-root search
    // is a plain O(d * n) scan. tree.sort_elided counts the
    // per-attribute sorts the old per-node algorithm would have run.
    static obs::Counter &sortElided = obs::counter("tree.sort_elided");
    if (!ctx.cols.built())
        ctx.cols.build(ds);
    else
        sortElided.add(ds.numAttributes());
    const SplitChoice best =
        ctx.cols.bestSplit(ds, lo, hi, options_.minInstances);

    if (!best.valid) {
        node.leaf = true;
        node.rows = std::move(rows);
        return;
    }

    node.leaf = false;
    node.splitAttr = best.attr;
    node.splitValue = best.value;

    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    for (std::size_t r : rows) {
        if (ds.value(r, best.attr) <= best.value)
            left_rows.push_back(r);
        else
            right_rows.push_back(r);
    }
    mtperf_assert(!left_rows.empty() && !right_rows.empty(),
                  "degenerate split");
    node.rows = std::move(rows); // interior nodes keep rows for models

    const std::size_t mid =
        ctx.cols.partition(ds, lo, hi, best.attr, best.value);
    mtperf_assert(mid - lo == left_rows.size(),
                  "presorted partition disagrees with the row split");

    node.left = std::make_unique<Node>();
    node.right = std::make_unique<Node>();
    growNode(*node.left, left_rows, lo, mid, depth + 1, ctx);
    growNode(*node.right, right_rows, mid, hi, depth + 1, ctx);
}

void
M5Prime::fitNodeModel(Node &node, std::vector<std::size_t> attrs)
{
    const Dataset &ds = *trainData_;
    LinearModelFitter fitter(ds, node.rows, std::move(attrs));
    node.model = fitter.fit();
    if (options_.simplifyModels)
        fitter.simplify(node.model);
    guardFiniteModel(node.model, node.meanTarget);
    node.modelMae = fitter.meanAbsoluteError(node.model);
}

void
M5Prime::buildModels(Node &node, BuildCtx &ctx)
{
    const Dataset &ds = *trainData_;
    const std::size_t d = ds.numAttributes();
    if (node.leaf) {
        node.subtreeAttrs.clear();
        // A grown leaf has no subtree tests; its model may regress on
        // the attributes tested on the way down (the split variables
        // that define its class), then simplification keeps only the
        // ones that matter — often none, which reproduces constant
        // leaves like the paper's LM18.
        if (ctx.pathDepth == 0) {
            node.model = LinearModel::constant(node.meanTarget);
            node.modelMae =
                node.model.meanAbsoluteError(ds, node.rows);
            return;
        }
        // Attribute lists are emitted by scanning presence marks in
        // index order: ascending and de-duplicated by construction,
        // with no per-node sort (see DESIGN.md §11).
        std::vector<std::size_t> attrs;
        for (std::size_t a = 0; a < d; ++a) {
            if (ctx.pathCount[a] > 0)
                attrs.push_back(a);
        }
        fitNodeModel(node, std::move(attrs));
        return;
    }

    ++ctx.pathCount[node.splitAttr];
    ++ctx.pathDepth;
    buildModels(*node.left, ctx);
    buildModels(*node.right, ctx);
    --ctx.pathCount[node.splitAttr];
    --ctx.pathDepth;

    // The node model may use every attribute tested in its subtree
    // (Wang & Witten) plus the tests that led here.
    std::fill(ctx.present.begin(), ctx.present.end(), 0);
    ctx.present[node.splitAttr] = 1;
    for (std::size_t a : node.left->subtreeAttrs)
        ctx.present[a] = 1;
    for (std::size_t a : node.right->subtreeAttrs)
        ctx.present[a] = 1;
    node.subtreeAttrs.clear();
    std::vector<std::size_t> fit_attrs;
    for (std::size_t a = 0; a < d; ++a) {
        if (ctx.present[a])
            node.subtreeAttrs.push_back(a);
        if (ctx.present[a] || ctx.pathCount[a] > 0)
            fit_attrs.push_back(a);
    }

    fitNodeModel(node, std::move(fit_attrs));
}

M5Prime::SubtreeCost
M5Prime::pruneNode(std::unique_ptr<Node> &node_ptr)
{
    Node &node = *node_ptr;
    const auto n = static_cast<double>(node.count);

    // Quinlan's pessimistic compensation, charging v parameters
    // against n instances. Subtrees are charged for every leaf-model
    // parameter *and* every split threshold below the node, so deep
    // structure must buy a real residual reduction to survive.
    auto compensated = [n](double raw_mae, std::size_t v) {
        const auto dv = static_cast<double>(v);
        if (n <= dv)
            return std::numeric_limits<double>::infinity();
        return (n + dv) / (n - dv) * raw_mae;
    };

    if (node.leaf) {
        // modelMae was cached by fitNodeModel over exactly these rows
        // in the same accumulation order, so reusing it here changes
        // nothing but the cost of the pass.
        return {node.modelMae, node.model.numParameters()};
    }

    const SubtreeCost left = pruneNode(node.left);
    const SubtreeCost right = pruneNode(node.right);
    const auto nl = static_cast<double>(node.left->count);
    const auto nr = static_cast<double>(node.right->count);

    SubtreeCost subtree;
    subtree.rawMae = (nl * left.rawMae + nr * right.rawMae) / (nl + nr);
    subtree.parameters = left.parameters + right.parameters + 1;

    const double subtree_err =
        compensated(subtree.rawMae, subtree.parameters);
    const double node_err =
        compensated(node.modelMae, node.model.numParameters());

    if (options_.prune && node_err <= subtree_err) {
        node.leaf = true;
        node.left.reset();
        node.right.reset();
        return {node.modelMae, node.model.numParameters()};
    }
    return subtree;
}

void
M5Prime::smoothLeaves(Node &node, std::vector<const Node *> &ancestors)
{
    if (node.leaf) {
        LinearModel blended = node.model;
        const Node *below = &node;
        for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
            blended.blendWith((*it)->model,
                              static_cast<double>(below->count),
                              options_.smoothingK);
            below = *it;
        }
        node.model = std::move(blended);
        return;
    }
    ancestors.push_back(&node);
    smoothLeaves(*node.left, ancestors);
    smoothLeaves(*node.right, ancestors);
    ancestors.pop_back();
}

void
M5Prime::collectLeaves(Node &node, std::vector<PathStep> &path)
{
    if (node.leaf) {
        node.leafId = static_cast<int>(leaves_.size());
        LeafInfo info;
        info.id = leaves_.size();
        info.count = node.count;
        info.trainFraction =
            static_cast<double>(node.count) /
            static_cast<double>(trainSize_);
        info.meanTarget = node.meanTarget;
        info.sdTarget = node.sdTarget;
        info.path = path;
        leaves_.push_back(std::move(info));
        leafNodes_.push_back(&node);
        return;
    }
    path.push_back({node.splitAttr, node.splitValue, false});
    collectLeaves(*node.left, path);
    path.back().goesRight = true;
    collectLeaves(*node.right, path);
    path.pop_back();
}

double
M5Prime::predict(std::span<const double> row) const
{
    mtperf_assert(root_ != nullptr, "predict() before fit()");
    const Node *node = root_.get();
    while (!node->leaf) {
        node = row[node->splitAttr] <= node->splitValue ? node->left.get()
                                                        : node->right.get();
    }
    return node->model.predict(row);
}

void
M5Prime::predictBatch(std::span<const double> rows, std::size_t width,
                      std::span<double> out) const
{
    mtperf_assert(root_ != nullptr, "predictBatch() before fit()");
    mtperf_assert(rows.size() == out.size() * width,
                  "batch size mismatch: ", rows.size(), " values for ",
                  out.size(), " rows of width ", width);
    mtperf_assert(flat_ != nullptr, "predictBatch() without a compiled "
                  "flat tree (fit/load not completed)");
    // Chunks keep per-task overhead negligible next to the tree walks
    // while still letting a large batch occupy the whole pool. Each
    // chunk is one FlatTree block: the chunk boundary never changes
    // per-row arithmetic, so any thread count gives the same bits.
    constexpr std::size_t kChunk = 256;
    const std::size_t n = out.size();
    const std::size_t chunks = (n + kChunk - 1) / kChunk;
    globalPool().parallelFor(chunks, [&](std::size_t c) {
        const std::size_t lo = c * kChunk;
        const std::size_t hi = std::min(n, lo + kChunk);
        flat_->predictBlock(rows.data() + lo * width, width, hi - lo,
                            out.data() + lo);
    });
}

void
M5Prime::buildFlatTree()
{
    // Pre-order, left child first: leaves are appended in exactly the
    // order collectLeaves numbered them, so FlatTree leaf indices and
    // leafId/leafModel() agree.
    struct Compiler
    {
        FlatTree::Builder &builder;

        FlatTree::Ref
        compile(const Node &node)
        {
            if (node.leaf)
                return builder.addLeaf(node.model);
            const FlatTree::Ref self =
                builder.addSplit(node.splitAttr, node.splitValue);
            const FlatTree::Ref left = compile(*node.left);
            const FlatTree::Ref right = compile(*node.right);
            builder.setChildren(self, left, right);
            return self;
        }
    };
    FlatTree::Builder builder;
    Compiler compiler{builder};
    const FlatTree::Ref root = compiler.compile(*root_);
    flat_ = std::make_unique<FlatTree>(std::move(builder).build(root));
}

std::size_t
M5Prime::numLeaves() const
{
    return leaves_.size();
}

std::size_t
M5Prime::depth() const
{
    mtperf_assert(root_ != nullptr, "depth() before fit()");
    std::size_t best = 0;
    for (const auto &leaf : leaves_)
        best = std::max(best, leaf.path.size());
    return best;
}

std::size_t
M5Prime::numNodes() const
{
    struct Counter
    {
        static std::size_t
        count(const Node &n)
        {
            if (n.leaf)
                return 1;
            return 1 + count(*n.left) + count(*n.right);
        }
    };
    mtperf_assert(root_ != nullptr, "numNodes() before fit()");
    return Counter::count(*root_);
}

std::size_t
M5Prime::leafIndexFor(std::span<const double> row) const
{
    mtperf_assert(root_ != nullptr, "leafIndexFor() before fit()");
    const Node *node = root_.get();
    while (!node->leaf) {
        node = row[node->splitAttr] <= node->splitValue ? node->left.get()
                                                        : node->right.get();
    }
    return static_cast<std::size_t>(node->leafId);
}

const LeafInfo &
M5Prime::leafInfo(std::size_t leaf) const
{
    mtperf_assert(leaf < leaves_.size(), "leaf index out of range");
    return leaves_[leaf];
}

const LinearModel &
M5Prime::leafModel(std::size_t leaf) const
{
    mtperf_assert(leaf < leafNodes_.size(), "leaf index out of range");
    return leafNodes_[leaf]->model;
}

std::vector<std::size_t>
M5Prime::splitAttributes() const
{
    return splitAttributes_;
}

void
M5Prime::refreshSplitAttributes()
{
    // Computed once per fit/load instead of per query; callers used to
    // trigger a fresh sort+unique over every leaf path on each call.
    std::vector<std::size_t> attrs;
    for (const auto &leaf : leaves_)
        for (const auto &step : leaf.path)
            attrs.push_back(step.attr);
    std::sort(attrs.begin(), attrs.end());
    attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
    splitAttributes_ = std::move(attrs);
}

std::vector<SplitSite>
M5Prime::splitSites() const
{
    mtperf_assert(root_ != nullptr, "splitSites() before fit()");
    std::vector<SplitSite> sites;
    std::vector<PathStep> path;

    struct Walker
    {
        std::vector<SplitSite> &sites;
        std::vector<PathStep> &path;

        void
        walk(const Node &node)
        {
            if (node.leaf)
                return;
            sites.push_back({path, node.splitAttr, node.splitValue,
                             node.count});
            path.push_back({node.splitAttr, node.splitValue, false});
            walk(*node.left);
            path.back().goesRight = true;
            walk(*node.right);
            path.pop_back();
        }
    };
    Walker{sites, path}.walk(*root_);
    return sites;
}

std::optional<std::size_t>
M5Prime::rootSplitAttribute() const
{
    mtperf_assert(root_ != nullptr, "rootSplitAttribute() before fit()");
    if (root_->leaf)
        return std::nullopt;
    return root_->splitAttr;
}

void
M5Prime::print(std::ostream &os) const
{
    mtperf_assert(root_ != nullptr, "print() before fit()");

    // Recursive WEKA-style rendering. A child that is a leaf prints on
    // the same line as the split test that reaches it.
    struct Printer
    {
        const M5Prime &tree;
        std::ostream &os;

        void
        leafLabel(const Node &n)
        {
            const auto &info = tree.leaves_[static_cast<std::size_t>(
                n.leafId)];
            os << " LM" << (n.leafId + 1) << " (" << n.count << "/"
               << formatDouble(info.trainFraction * 100.0, 1) << "%)";
        }

        void
        walk(const Node &n, int depth)
        {
            if (n.leaf) {
                // Only reached when the whole tree is one leaf.
                os << "LM1 (" << n.count << "/100.0%)\n";
                return;
            }
            const std::string &attr =
                tree.schema_.attributeName(n.splitAttr);
            const std::string value = formatDouble(n.splitValue, 6);
            auto branch = [&](const Node &child, const char *op) {
                for (int i = 0; i < depth; ++i)
                    os << "|   ";
                os << attr << ' ' << op << ' ' << value << " :";
                if (child.leaf) {
                    leafLabel(child);
                    os << '\n';
                } else {
                    os << '\n';
                    walk(child, depth + 1);
                }
            };
            branch(*n.left, "<=");
            branch(*n.right, "> ");
        }
    };

    os << schema_.targetName() << " model tree (M5')\n\n";
    Printer{*this, os}.walk(*root_, 0);
    os << "\nNumber of leaves: " << numLeaves() << "\n\n";
    for (std::size_t i = 0; i < leaves_.size(); ++i) {
        os << "LM" << (i + 1) << ": " << leafModel(i).toString(schema_)
           << "\n";
    }
}

std::string
M5Prime::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

void
M5Prime::save(std::ostream &os) const
{
    mtperf_assert(root_ != nullptr, "save() before fit()");
    std::ostringstream body;
    body.precision(17);
    writeBody(body);
    MTPERF_FAULT_POINT("model.save.fail");
    const std::string text = body.str();
    os << text << "checksum " << crc32Hex(crc32(text)) << "\n";
}

void
M5Prime::writeBody(std::ostream &os) const
{
    os << "m5prime-model v2\n";
    os << "target " << schema_.targetName() << "\n";
    os << "attributes " << schema_.numAttributes() << "\n";
    for (std::size_t a = 0; a < schema_.numAttributes(); ++a)
        os << "a " << schema_.attributeName(a) << "\n";
    os << "trainSize " << trainSize_ << "\n";
    os << "options " << options_.minInstances << " "
       << options_.sdFraction << " " << (options_.prune ? 1 : 0) << " "
       << (options_.smooth ? 1 : 0) << " " << options_.smoothingK << " "
       << (options_.simplifyModels ? 1 : 0) << " " << options_.maxDepth
       << "\n";

    struct Writer
    {
        std::ostream &os;

        void
        walk(const Node &node)
        {
            if (!node.leaf) {
                os << "node s " << node.splitAttr << " "
                   << node.splitValue << " " << node.count << " "
                   << node.meanTarget << " " << node.sdTarget << "\n";
                walk(*node.left);
                walk(*node.right);
                return;
            }
            os << "node l " << node.count << " " << node.meanTarget
               << " " << node.sdTarget << " "
               << node.model.intercept() << " "
               << node.model.terms().size();
            for (const auto &term : node.model.terms())
                os << " " << term.attr << " " << term.coef;
            os << "\n";
        }
    };
    Writer{os}.walk(*root_);
    os << "end\n";
}

void
M5Prime::saveFile(const std::string &path) const
{
    atomicWriteFile(path, [this](std::ostream &out) { save(out); });
}

M5Prime
M5Prime::load(std::istream &is)
{
    return load(is, "<stream>");
}

M5Prime
M5Prime::load(std::istream &is, const std::string &source)
{
    // Slurp the whole input so the v2 checksum can be verified before
    // a single byte is interpreted: corrupt files fail with a checksum
    // diagnostic rather than a confusing parse error deep in the body.
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (startsWith(text, "m5prime-model v2")) {
        const std::string marker = "\nchecksum ";
        const auto pos = text.rfind(marker);
        if (pos == std::string::npos) {
            mtperf_fatal("corrupt model ", source,
                         ": missing checksum footer (truncated file?)");
        }
        const std::string body = text.substr(0, pos + 1);
        std::uint32_t stored = 0;
        if (!parseCrc32Hex(trim(text.substr(pos + marker.size())),
                           stored)) {
            mtperf_fatal("corrupt model ", source,
                         ": malformed checksum footer");
        }
        const std::uint32_t actual = crc32(body);
        if (stored != actual) {
            mtperf_fatal("corrupt model ", source,
                         ": checksum mismatch (footer says ",
                         crc32Hex(stored), ", content hashes to ",
                         crc32Hex(actual), ")");
        }
        text = body;
    }

    std::istringstream in(text);
    std::string word;
    auto expect = [&in, &word, &source](const char *expected) {
        if (!(in >> word) || word != expected)
            mtperf_fatal("malformed model ", source, ": expected '",
                         expected, "', got '", word, "'");
    };

    expect("m5prime-model");
    if (!(in >> word) || (word != "v1" && word != "v2"))
        mtperf_fatal("malformed model ", source,
                     ": unsupported format version '", word, "'");
    expect("target");
    std::string target;
    if (!(in >> target))
        mtperf_fatal("malformed model ", source, ": missing target name");
    expect("attributes");
    std::size_t n_attrs = 0;
    if (!(in >> n_attrs))
        mtperf_fatal("malformed model ", source,
                     ": missing attribute count");
    std::vector<std::string> names;
    for (std::size_t a = 0; a < n_attrs; ++a) {
        expect("a");
        std::string name;
        if (!(in >> name))
            mtperf_fatal("malformed model ", source,
                         ": missing attribute name");
        names.push_back(std::move(name));
    }
    expect("trainSize");
    std::size_t train_size = 0;
    if (!(in >> train_size))
        mtperf_fatal("malformed model ", source, ": missing trainSize");

    expect("options");
    M5Options options;
    int prune = 1, smooth = 1, simplify = 1;
    if (!(in >> options.minInstances >> options.sdFraction >> prune >>
          smooth >> options.smoothingK >> simplify >>
          options.maxDepth)) {
        mtperf_fatal("malformed model ", source, ": bad options line");
    }
    options.prune = prune != 0;
    options.smooth = smooth != 0;
    options.simplifyModels = simplify != 0;

    // Recursive-descent reconstruction of the pre-order node list.
    struct Reader
    {
        std::istream &is;
        const std::string &source;
        std::size_t n_attrs;

        std::unique_ptr<Node>
        readNode()
        {
            std::string keyword, kind;
            if (!(is >> keyword >> kind) || keyword != "node")
                mtperf_fatal("malformed model ", source,
                             ": expected a node");
            auto node = std::make_unique<Node>();
            if (kind == "s") {
                if (!(is >> node->splitAttr >> node->splitValue >>
                      node->count >> node->meanTarget >>
                      node->sdTarget)) {
                    mtperf_fatal("malformed model ", source,
                                 ": bad split node");
                }
                if (node->splitAttr >= n_attrs)
                    mtperf_fatal("model ", source,
                                 " references attribute ",
                                 node->splitAttr, " out of range");
                node->leaf = false;
                node->left = readNode();
                node->right = readNode();
                return node;
            }
            if (kind != "l")
                mtperf_fatal("malformed model ", source,
                             ": unknown node kind '", kind, "'");
            double intercept = 0.0;
            std::size_t n_terms = 0;
            if (!(is >> node->count >> node->meanTarget >>
                  node->sdTarget >> intercept >> n_terms)) {
                mtperf_fatal("malformed model ", source,
                             ": bad leaf node");
            }
            if (!std::isfinite(intercept))
                mtperf_fatal("malformed model ", source,
                             ": non-finite leaf intercept");
            node->model = LinearModel::constant(intercept);
            for (std::size_t t = 0; t < n_terms; ++t) {
                std::size_t attr = 0;
                double coef = 0.0;
                if (!(is >> attr >> coef))
                    mtperf_fatal("malformed model ", source,
                                 ": bad model term");
                if (attr >= n_attrs)
                    mtperf_fatal("model ", source,
                                 " references attribute ", attr,
                                 " out of range");
                if (!std::isfinite(coef))
                    mtperf_fatal("malformed model ", source,
                                 ": non-finite model coefficient");
                node->model.addTerm(attr, coef);
            }
            node->leaf = true;
            return node;
        }
    };

    M5Prime tree(options);
    tree.schema_ = Schema(names, target);
    tree.trainSize_ = train_size;
    Reader reader{in, source, n_attrs};
    tree.root_ = reader.readNode();

    std::string tail;
    if (!(in >> tail) || tail != "end")
        mtperf_fatal("malformed model ", source, ": missing 'end'");

    std::vector<PathStep> path;
    tree.collectLeaves(*tree.root_, path);
    tree.refreshSplitAttributes();
    tree.buildFlatTree();
    return tree;
}

M5Prime
M5Prime::loadFile(const std::string &path)
{
    MTPERF_FAULT_POINT("fs.open.fail");
    std::ifstream in(path);
    if (!in)
        mtperf_fatal("cannot open model file: ", path);
    return load(in, path);
}

} // namespace mtperf
