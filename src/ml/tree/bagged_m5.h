/**
 * @file
 * Bagged ensemble of M5' model trees.
 *
 * A natural extension of the paper's method (in the spirit of its
 * "other machine learning techniques" comparison): train B trees on
 * bootstrap resamples and average their predictions. The ensemble
 * usually buys a few points of accuracy at the cost of the single
 * tree's one-look interpretability — which is precisely the tradeoff
 * the paper argues against black-box models, so the comparison bench
 * quantifies it.
 */

#ifndef MTPERF_ML_TREE_BAGGED_M5_H_
#define MTPERF_ML_TREE_BAGGED_M5_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/regressor.h"
#include "ml/tree/m5prime.h"

namespace mtperf {

/** Hyper-parameters for the bagged ensemble. */
struct BaggedM5Options
{
    M5Options treeOptions{};
    std::size_t bags = 10;
    std::uint64_t seed = 1; //!< bootstrap resampling seed
};

/** Bootstrap-aggregated M5' trees (predictions are averaged). */
class BaggedM5 : public Regressor
{
  public:
    explicit BaggedM5(BaggedM5Options options = {});

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;

    /**
     * Batch prediction, one pool task per member tree; the per-tree
     * outputs are averaged in fixed tree order so the result is
     * bit-identical to the serial per-row loop.
     */
    void predictBatch(std::span<const double> rows, std::size_t width,
                      std::span<double> out) const override;

    std::string name() const override { return "BaggedM5"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<BaggedM5>(options_);
    }

    /** Number of trained member trees. */
    std::size_t numTrees() const { return trees_.size(); }

    const BaggedM5Options &options() const { return options_; }

    /** Access a member tree (for inspection). */
    const M5Prime &tree(std::size_t i) const;

    /**
     * How often each attribute is used as a split variable across the
     * ensemble — a variable-importance signal the single tree cannot
     * provide. Indexed by attribute, counts in [0, bags].
     */
    std::vector<std::size_t> splitFrequency() const;

  private:
    BaggedM5Options options_;
    std::size_t numAttributes_ = 0;
    std::vector<std::unique_ptr<M5Prime>> trees_;
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_BAGGED_M5_H_
