#include "ml/tree/bagged_m5.h"

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mtperf {

BaggedM5::BaggedM5(BaggedM5Options options) : options_(std::move(options))
{
    if (options_.bags == 0)
        mtperf_fatal("BaggedM5: need at least one bag");
}

void
BaggedM5::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("BaggedM5: empty training set");
    numAttributes_ = train.numAttributes();
    trees_.clear();

    // Draw every bootstrap resample from the single seeded stream
    // first (exactly as the serial loop did), then fit the bags
    // concurrently: tree construction is the expensive part and each
    // bag writes only its own slot.
    Rng rng(options_.seed);
    std::vector<std::vector<std::size_t>> samples(
        options_.bags, std::vector<std::size_t>(train.size()));
    for (std::size_t b = 0; b < options_.bags; ++b) {
        // Bootstrap resample with replacement, same size as train.
        for (auto &idx : samples[b])
            idx = rng.uniformInt(std::uint64_t(train.size()));
    }

    trees_.resize(options_.bags);
    globalPool().parallelFor(options_.bags, [&](std::size_t b) {
        const Dataset bag = train.subset(samples[b]);
        auto tree = std::make_unique<M5Prime>(options_.treeOptions);
        tree->fit(bag);
        trees_[b] = std::move(tree);
    });
}

double
BaggedM5::predict(std::span<const double> row) const
{
    mtperf_assert(!trees_.empty(), "predict() before fit()");
    double acc = 0.0;
    for (const auto &tree : trees_)
        acc += tree->predict(row);
    return acc / static_cast<double>(trees_.size());
}

void
BaggedM5::predictBatch(std::span<const double> rows, std::size_t width,
                       std::span<double> out) const
{
    mtperf_assert(!trees_.empty(), "predictBatch() before fit()");
    mtperf_assert(rows.size() == out.size() * width,
                  "batch size mismatch: ", rows.size(), " values for ",
                  out.size(), " rows of width ", width);
    // One task per member tree; averaging runs serially in tree order
    // afterwards, which is the same floating-point addition order as
    // the per-row predict() loop.
    const auto per_tree =
        parallelMap(globalPool(), trees_.size(), [&](std::size_t t) {
            std::vector<double> p(out.size());
            trees_[t]->predictBatch(rows, width, p);
            return p;
        });
    for (std::size_t r = 0; r < out.size(); ++r) {
        double acc = 0.0;
        for (const auto &p : per_tree)
            acc += p[r];
        out[r] = acc / static_cast<double>(trees_.size());
    }
}

const M5Prime &
BaggedM5::tree(std::size_t i) const
{
    mtperf_assert(i < trees_.size(), "tree index out of range");
    return *trees_[i];
}

std::vector<std::size_t>
BaggedM5::splitFrequency() const
{
    mtperf_assert(!trees_.empty(), "splitFrequency() before fit()");
    std::vector<std::size_t> frequency(numAttributes_, 0);
    for (const auto &tree : trees_) {
        for (std::size_t attr : tree->splitAttributes())
            ++frequency[attr];
    }
    return frequency;
}

} // namespace mtperf
