#include "ml/tree/flat_tree.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace mtperf {

FlatTree::Ref
FlatTree::Builder::addSplit(std::size_t attr, double value)
{
    const Ref ref = static_cast<Ref>(tree_.splitAttr_.size());
    tree_.splitAttr_.push_back(static_cast<std::uint32_t>(attr));
    tree_.splitValue_.push_back(value);
    tree_.left_.push_back(0);
    tree_.right_.push_back(0);
    return ref;
}

FlatTree::Ref
FlatTree::Builder::addLeaf(const LinearModel &model)
{
    const Ref ref = ~static_cast<Ref>(tree_.intercept_.size());
    tree_.intercept_.push_back(model.intercept());
    tree_.termStart_.push_back(
        static_cast<std::uint32_t>(tree_.termAttr_.size()));
    tree_.termCount_.push_back(
        static_cast<std::uint32_t>(model.terms().size()));
    for (const LinearModel::Term &term : model.terms()) {
        tree_.termAttr_.push_back(
            static_cast<std::uint32_t>(term.attr));
        tree_.termCoef_.push_back(term.coef);
    }
    return ref;
}

void
FlatTree::Builder::setChildren(Ref node, Ref left, Ref right)
{
    mtperf_assert(node >= 0 &&
                      static_cast<std::size_t>(node) <
                          tree_.left_.size(),
                  "FlatTree::Builder: bad node reference");
    tree_.left_[static_cast<std::size_t>(node)] = left;
    tree_.right_[static_cast<std::size_t>(node)] = right;
}

FlatTree
FlatTree::Builder::build(Ref root) &&
{
    mtperf_assert(!tree_.intercept_.empty(),
                  "FlatTree::Builder: a tree needs at least one leaf");
    tree_.root_ = root;
    return std::move(tree_);
}

void
FlatTree::descend(const double *rows, std::size_t width, std::size_t n,
                  Ref *cursor) const
{
    std::size_t descending = root_ >= 0 ? n : 0;
    for (std::size_t i = 0; i < n; ++i)
        cursor[i] = root_;
    // One pass per tree level: every still-descending row takes one
    // branch. Rows finish at different depths; finished rows carry a
    // negative (leaf) reference and are skipped.
    while (descending > 0) {
        descending = 0;
        for (std::size_t i = 0; i < n; ++i) {
            Ref ref = cursor[i];
            if (ref < 0)
                continue;
            const auto node = static_cast<std::size_t>(ref);
            const double v = rows[i * width + splitAttr_[node]];
            ref = v <= splitValue_[node] ? left_[node] : right_[node];
            cursor[i] = ref;
            descending += ref >= 0 ? 1u : 0u;
        }
    }
}

void
FlatTree::predictBlock(const double *rows, std::size_t width,
                       std::size_t n, double *out) const
{
    mtperf_assert(!intercept_.empty(),
                  "FlatTree::predictBlock on an empty tree");
    for (std::size_t base = 0; base < n; base += kMaxBlock) {
        const std::size_t m = std::min(kMaxBlock, n - base);
        const double *block = rows + base * width;
        double *block_out = out + base;

        Ref cursor[kMaxBlock];
        descend(block, width, m, cursor);

        // Group rows by leaf so each leaf's model is evaluated
        // term-major over the whole group: the (attr, coef) pair
        // stays in registers while the accumulators stream.
        std::uint32_t order[kMaxBlock];
        std::iota(order, order + m, 0u);
        std::sort(order, order + m,
                  [&cursor](std::uint32_t a, std::uint32_t b) {
                      return cursor[a] < cursor[b];
                  });

        double acc[kMaxBlock];
        std::size_t i = 0;
        while (i < m) {
            const Ref leaf_ref = cursor[order[i]];
            std::size_t j = i;
            while (j < m && cursor[order[j]] == leaf_ref)
                ++j;
            const auto leaf = static_cast<std::size_t>(~leaf_ref);
            const double base_value = intercept_[leaf];
            for (std::size_t k = i; k < j; ++k)
                acc[k] = base_value;
            const std::size_t start = termStart_[leaf];
            const std::size_t stop = start + termCount_[leaf];
            for (std::size_t t = start; t < stop; ++t) {
                const std::size_t attr = termAttr_[t];
                const double coef = termCoef_[t];
                for (std::size_t k = i; k < j; ++k)
                    acc[k] += coef * block[order[k] * width + attr];
            }
            for (std::size_t k = i; k < j; ++k)
                block_out[order[k]] = acc[k];
            i = j;
        }
    }
}

void
FlatTree::leafBlock(const double *rows, std::size_t width,
                    std::size_t n, std::uint32_t *out) const
{
    mtperf_assert(!intercept_.empty(),
                  "FlatTree::leafBlock on an empty tree");
    for (std::size_t base = 0; base < n; base += kMaxBlock) {
        const std::size_t m = std::min(kMaxBlock, n - base);
        Ref cursor[kMaxBlock];
        descend(rows + base * width, width, m, cursor);
        for (std::size_t i = 0; i < m; ++i)
            out[base + i] = static_cast<std::uint32_t>(~cursor[i]);
    }
}

} // namespace mtperf
