/**
 * @file
 * The M5' model-tree learner (Quinlan 1992; Wang & Witten 1997).
 *
 * This is the paper's core algorithm: a binary regression tree whose
 * leaves carry multi-variate linear models. Construction follows the
 * classical recipe:
 *
 *  1. *Grow*: recursively split on the (attribute, value) pair that
 *     maximizes the standard-deviation reduction (SDR), stopping when
 *     a node is too small (pre-pruning; the paper used a minimum of
 *     430 instances) or its target deviation falls below a fraction
 *     of the root deviation.
 *  2. *Model*: at every node fit a linear model over the attributes
 *     referenced by split tests in the subtree below it plus the
 *     split variables on the path to it (a grown leaf thus regresses
 *     on the variables that define its class), then greedily drop
 *     terms under the pessimistic (n+v)/(n-v) error estimate —
 *     which is how constant leaves like the paper's LM18 arise.
 *  3. *Prune*: bottom-up, replace a subtree with its node model when
 *     the model's estimated error is no worse than the subtree's.
 *  4. *Smooth*: blend each leaf model with its ancestors' models,
 *     p' = (n p + k q) / (n + k) with k = 15, compiled into the leaf
 *     coefficients so the printed models are exactly what predicts.
 *
 * The class exposes the full structure — leaves, their linear models,
 * split paths, and per-leaf training coverage — because the paper's
 * analysis ("what" limits performance, "how much" is recoverable)
 * reads those artifacts directly.
 */

#ifndef MTPERF_ML_TREE_M5PRIME_H_
#define MTPERF_ML_TREE_M5PRIME_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/linear/linear_model.h"
#include "ml/regressor.h"

namespace mtperf {

class FlatTree;

/** Tunable knobs for M5' construction. */
struct M5Options
{
    /**
     * Minimum training instances per leaf (each side of any split must
     * keep at least this many). WEKA's default is 4; the paper
     * determined 430 experimentally for its counter dataset.
     */
    std::size_t minInstances = 4;

    /**
     * Stop splitting once a node's target standard deviation drops
     * below this fraction of the root standard deviation.
     */
    double sdFraction = 0.05;

    /** Run the bottom-up pruning pass. */
    bool prune = true;

    /** Compile Quinlan's smoothing into the leaf models. */
    bool smooth = true;

    /** Smoothing constant k in p' = (n p + k q) / (n + k). */
    double smoothingK = 15.0;

    /** Greedily drop model terms under the compensated error. */
    bool simplifyModels = true;

    /** Maximum tree depth (safety valve; 0 = unlimited). */
    std::size_t maxDepth = 0;
};

/** One decision on a root-to-leaf path. */
struct PathStep
{
    std::size_t attr = 0;   //!< split attribute index
    double value = 0.0;     //!< split threshold
    bool goesRight = false; //!< true if the path takes attr > value
};

/** Public description of one interior split node. */
struct SplitSite
{
    std::vector<PathStep> pathTo; //!< decisions that reach the node
    std::size_t attr = 0;         //!< attribute this node tests
    double value = 0.0;           //!< threshold this node tests
    std::size_t count = 0;        //!< training instances at the node
};

/** Public description of one leaf (performance class). */
struct LeafInfo
{
    std::size_t id = 0;          //!< dense leaf index, left-to-right
    std::size_t count = 0;       //!< training instances in the leaf
    double trainFraction = 0.0;  //!< count / training-set size
    double meanTarget = 0.0;     //!< mean target of the leaf's instances
    double sdTarget = 0.0;       //!< target std-dev of the leaf's instances
    std::vector<PathStep> path;  //!< root-to-leaf decision rules
};

/** M5' model tree regressor. */
class M5Prime : public Regressor
{
  public:
    explicit M5Prime(M5Options options = {});
    ~M5Prime() override;

    M5Prime(M5Prime &&) noexcept;
    M5Prime &operator=(M5Prime &&) noexcept;
    M5Prime(const M5Prime &) = delete;
    M5Prime &operator=(const M5Prime &) = delete;

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;

    /**
     * Batch prediction, chunk-parallel over the global pool. Each
     * chunk runs through the FlatTree compilation of this tree:
     * level-by-level block descent plus leaf-grouped term-major
     * linear-model evaluation on flat arrays — the same arithmetic in
     * the same order as the scalar walk, so the result is
     * bit-identical to per-row predict() at any thread count. This is
     * the server's hot path.
     */
    void predictBatch(std::span<const double> rows, std::size_t width,
                      std::span<double> out) const override;

    std::string name() const override { return "M5Prime"; }

    /** Configuration clone; the fitted tree is not copied (use save/load). */
    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<M5Prime>(options_);
    }

    const M5Options &options() const { return options_; }

    /** @name Structure introspection (valid after fit()) */
    ///@{

    /** Number of leaves (performance classes). */
    std::size_t numLeaves() const;

    /** Maximum root-to-leaf depth (a lone leaf has depth 0). */
    std::size_t depth() const;

    /** Total number of nodes. */
    std::size_t numNodes() const;

    /** Leaf reached by @p row. */
    std::size_t leafIndexFor(std::span<const double> row) const;

    /** Descriptive record for leaf @p leaf. */
    const LeafInfo &leafInfo(std::size_t leaf) const;

    /** The (possibly smoothed) linear model that predicts in @p leaf. */
    const LinearModel &leafModel(std::size_t leaf) const;

    /** All split attributes used anywhere in the tree, de-duplicated. */
    std::vector<std::size_t> splitAttributes() const;

    /** Every interior split node, in depth-first (pre-order) order. */
    std::vector<SplitSite> splitSites() const;

    /**
     * Attribute of the root split, or nullopt when the tree is a
     * single leaf.
     */
    std::optional<std::size_t> rootSplitAttribute() const;

    /**
     * WEKA-style rendering: indented split rules, leaves labelled
     * "LM<n> (<count>/<percent>%)", followed by the model listing.
     */
    std::string toString() const;

    /** Render to a stream (same format as toString()). */
    void print(std::ostream &os) const;
    ///@}

    /** @name Persistence */
    ///@{

    /**
     * Serialize the fitted tree (schema, options, structure and leaf
     * models) to a line-based text format that load() reads back.
     * Format v2 appends a "checksum <hex8>" CRC32 footer covering the
     * whole body, so any bit flip or truncation is detected on load.
     * @pre fit() has been called.
     */
    void save(std::ostream &os) const;

    /**
     * Save to a file path, atomically (temp file + rename): a killed
     * process never leaves a partial model at @p path.
     * @throw FatalError on I/O failure.
     */
    void saveFile(const std::string &path) const;

    /**
     * Reconstruct a fitted tree from save() output (v1 or v2). The
     * loaded tree predicts identically to the saved one. For v2 input
     * the checksum footer is verified before any parsing.
     * @throw FatalError on malformed or corrupt input, naming
     * @p source (defaults to "<stream>") and the cause.
     */
    static M5Prime load(std::istream &is);
    static M5Prime load(std::istream &is, const std::string &source);

    /** Load from a file path. @throw FatalError on I/O failure. */
    static M5Prime loadFile(const std::string &path);

    /** Schema the tree was trained over (valid after fit or load). */
    const Schema &schema() const { return schema_; }
    ///@}

  private:
    struct Node;
    struct GrowCtx;  //!< presorted split-search state (see m5prime.cc)
    struct BuildCtx; //!< path-attribute bookkeeping for buildModels

    /** Serialize everything but the checksum footer. */
    void writeBody(std::ostream &os) const;

    /**
     * Grow the subtree at @p node over @p rows, which also occupy
     * range [lo, hi) of every presorted column in @p ctx.
     */
    void growNode(Node &node, std::vector<std::size_t> &rows,
                  std::size_t lo, std::size_t hi, std::size_t depth,
                  GrowCtx &ctx);
    /** Raw residual and parameter count of a (sub)tree, for pruning. */
    struct SubtreeCost
    {
        double rawMae = 0.0;
        std::size_t parameters = 0;
    };

    void buildModels(Node &node, BuildCtx &ctx);
    /**
     * Fit (and optionally simplify) one node's model over @p attrs
     * through the Gram-cached fitter, caching its MAE for pruning.
     */
    void fitNodeModel(Node &node, std::vector<std::size_t> attrs);
    SubtreeCost pruneNode(std::unique_ptr<Node> &node_ptr);
    void smoothLeaves(Node &node, std::vector<const Node *> &ancestors);
    void collectLeaves(Node &node, std::vector<PathStep> &path);
    /** Recompute the cached splitAttributes() answer from leaves_. */
    void refreshSplitAttributes();
    /** Compile root_ into flat_ (after fit() and load()). */
    void buildFlatTree();

    M5Options options_;
    Schema schema_;
    std::unique_ptr<Node> root_;
    const Dataset *trainData_ = nullptr; //!< valid only during fit()
    double rootSd_ = 0.0;
    std::size_t trainSize_ = 0;
    std::vector<LeafInfo> leaves_;
    std::vector<const Node *> leafNodes_;
    std::vector<std::size_t> splitAttributes_; //!< sorted, de-duplicated
    std::unique_ptr<FlatTree> flat_; //!< batch-inference compilation
};

} // namespace mtperf

#endif // MTPERF_ML_TREE_M5PRIME_H_
