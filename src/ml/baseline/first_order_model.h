/**
 * @file
 * The traditional uniform-penalty CPI model (the paper's strawman).
 *
 * First-order models in the style of Karkhanis & Smith express CPI as
 * an ideal steady-state CPI plus a fixed penalty per event occurrence:
 *
 *     CPI = CPI_base + sum_i penalty_i * X_i
 *
 * with the penalties taken from the machine's latency numbers (an L2
 * miss costs the memory latency, a mispredict the re-steer cost, ...).
 * The paper's introduction argues this misattributes cost on an
 * out-of-order machine because overlap and interaction change the
 * *exposed* penalty per event; the model-comparison bench quantifies
 * exactly that gap. fit() only calibrates CPI_base (the average
 * residual after subtracting the fixed penalties), which is how such
 * models are used in practice.
 *
 * The model lives in the ml layer (it is a learner, and the
 * RegressorFactory registry must construct it) but keeps its
 * historical mtperf::perf namespace; src/perf/first_order_model.h
 * forwards here. Its uarch dependencies are header-only configs.
 */

#ifndef MTPERF_ML_BASELINE_FIRST_ORDER_MODEL_H_
#define MTPERF_ML_BASELINE_FIRST_ORDER_MODEL_H_

#include <array>
#include <span>
#include <string>

#include "ml/regressor.h"
#include "uarch/core.h"
#include "uarch/event_counters.h"

namespace mtperf::perf {

/** Fixed-penalty first-order CPI model. */
class FirstOrderModel : public Regressor
{
  public:
    /**
     * Derive the per-event penalty table from a machine config (e.g.,
     * an L2 load miss costs config.memLatency cycles).
     */
    explicit FirstOrderModel(
        const uarch::CoreConfig &config = uarch::CoreConfig::core2Like());

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "FirstOrder"; }

    std::unique_ptr<Regressor> clone() const override;

    /** The fixed penalty for one metric, in cycles per event. */
    double penalty(uarch::PerfMetric metric) const;

    /** Calibrated base CPI. @pre fit() has been called. */
    double baseCpi() const { return baseCpi_; }

  private:
    std::array<double, uarch::kNumPerfMetrics> penalties_{};
    double baseCpi_ = 0.0;
    bool fitted_ = false;
};

} // namespace mtperf::perf

#endif // MTPERF_ML_BASELINE_FIRST_ORDER_MODEL_H_
