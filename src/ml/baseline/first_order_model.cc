#include "ml/baseline/first_order_model.h"

#include "common/logging.h"

namespace mtperf::perf {

using uarch::PerfMetric;

FirstOrderModel::FirstOrderModel(const uarch::CoreConfig &config)
{
    auto set = [this](PerfMetric metric, double cycles) {
        penalties_[static_cast<std::size_t>(metric)] = cycles;
    };
    // Instruction-mix metrics carry no penalty in a first-order model.
    set(PerfMetric::BrMisPr, static_cast<double>(
                                 config.mispredictPenalty));
    // A L1D miss that hits L2 costs the L2 latency beyond the L1 hit.
    set(PerfMetric::L1DM, static_cast<double>(config.l2HitLatency -
                                              config.l1dHitLatency));
    set(PerfMetric::L1IM,
        static_cast<double>(config.l1iMissToL2Latency));
    // An L2 miss costs the full memory latency beyond L2.
    set(PerfMetric::L2M,
        static_cast<double>(config.memLatency - config.l2HitLatency));
    set(PerfMetric::DtlbL0LdM,
        static_cast<double>(config.dtlbL0MissLatency));
    set(PerfMetric::DtlbLdM,
        static_cast<double>(config.pageWalkLatency));
    // DtlbLdReM and Dtlb largely duplicate DtlbLdM; charging them all
    // would triple-count, which is itself a classic pitfall of the
    // ad-hoc method. Charge the walk once via DtlbLdM; Dtlb picks up
    // the store-side walks not in DtlbLdM.
    set(PerfMetric::ItlbM, static_cast<double>(config.pageWalkLatency));
    set(PerfMetric::LdBlSta, static_cast<double>(
                                 config.lsq.staBlockCycles));
    set(PerfMetric::LdBlStd, static_cast<double>(
                                 config.lsq.stdBlockCycles));
    set(PerfMetric::LdBlOvSt, static_cast<double>(
                                  config.lsq.overlapBlockCycles));
    set(PerfMetric::MisalRef,
        static_cast<double>(config.misalignPenalty));
    set(PerfMetric::L1DSpLd, static_cast<double>(config.splitPenalty));
    set(PerfMetric::L1DSpSt, static_cast<double>(config.splitPenalty));
    set(PerfMetric::LCP,
        static_cast<double>(config.decoder.lcpStallCycles));
}

void
FirstOrderModel::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("FirstOrderModel: empty training set");
    if (train.numAttributes() != uarch::kNumPerfMetrics) {
        mtperf_fatal("FirstOrderModel expects the ", uarch::kNumPerfMetrics,
                     "-metric perf schema, got ", train.numAttributes(),
                     " attributes");
    }
    // Calibrate the ideal steady-state CPI as the mean residual after
    // subtracting the fixed penalties.
    double acc = 0.0;
    for (std::size_t r = 0; r < train.size(); ++r) {
        const auto row = train.row(r);
        double penalty_sum = 0.0;
        for (std::size_t a = 0; a < penalties_.size(); ++a)
            penalty_sum += penalties_[a] * row[a];
        acc += train.target(r) - penalty_sum;
    }
    baseCpi_ = acc / static_cast<double>(train.size());
    fitted_ = true;
}

double
FirstOrderModel::predict(std::span<const double> row) const
{
    mtperf_assert(fitted_, "predict() before fit()");
    double cpi = baseCpi_;
    for (std::size_t a = 0; a < penalties_.size(); ++a)
        cpi += penalties_[a] * row[a];
    return cpi;
}

double
FirstOrderModel::penalty(PerfMetric metric) const
{
    return penalties_[static_cast<std::size_t>(metric)];
}

std::unique_ptr<Regressor>
FirstOrderModel::clone() const
{
    // The penalty table IS the configuration; calibration state stays
    // behind per the clone() contract.
    auto copy = std::make_unique<FirstOrderModel>();
    copy->penalties_ = penalties_;
    return copy;
}

} // namespace mtperf::perf
