#include "ml/linear/linear_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"
#include "math/least_squares.h"

namespace mtperf {

LinearModel
LinearModel::constant(double intercept)
{
    LinearModel m;
    m.intercept_ = intercept;
    return m;
}

LinearModel
LinearModel::fit(const Dataset &ds, std::span<const std::size_t> rows,
                 std::span<const std::size_t> attrs)
{
    mtperf_assert(!rows.empty(), "cannot fit a model on zero rows");

    LinearModel m;
    if (attrs.empty()) {
        double acc = 0.0;
        for (std::size_t r : rows)
            acc += ds.target(r);
        m.intercept_ = acc / static_cast<double>(rows.size());
        return m;
    }

    // Design matrix: one column per chosen attribute plus an intercept
    // column of ones.
    Matrix a(rows.size(), attrs.size() + 1);
    std::vector<double> b(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto row = ds.row(rows[i]);
        for (std::size_t j = 0; j < attrs.size(); ++j)
            a(i, j) = row[attrs[j]];
        a(i, attrs.size()) = 1.0;
        b[i] = ds.target(rows[i]);
    }

    const auto solution = solveLeastSquares(a, b);
    m.terms_.reserve(attrs.size());
    for (std::size_t j = 0; j < attrs.size(); ++j)
        m.terms_.push_back({attrs[j], solution.x[j]});
    m.intercept_ = solution.x[attrs.size()];
    return m;
}

void
LinearModel::addTerm(std::size_t attr, double coef)
{
    for (auto &term : terms_) {
        if (term.attr == attr) {
            term.coef = coef;
            return;
        }
    }
    terms_.push_back({attr, coef});
}

double
LinearModel::coefficient(std::size_t attr) const
{
    for (const auto &t : terms_) {
        if (t.attr == attr)
            return t.coef;
    }
    return 0.0;
}

double
LinearModel::predict(std::span<const double> row) const
{
    double acc = intercept_;
    for (const auto &t : terms_) {
        mtperf_assert(t.attr < row.size(), "model term out of row range");
        acc += t.coef * row[t.attr];
    }
    return acc;
}

double
LinearModel::meanAbsoluteError(const Dataset &ds,
                               std::span<const std::size_t> rows) const
{
    if (rows.empty())
        return 0.0;
    double acc = 0.0;
    for (std::size_t r : rows)
        acc += std::abs(predict(ds.row(r)) - ds.target(r));
    return acc / static_cast<double>(rows.size());
}

double
LinearModel::compensatedError(const Dataset &ds,
                              std::span<const std::size_t> rows) const
{
    const auto n = static_cast<double>(rows.size());
    const auto v = static_cast<double>(numParameters());
    if (n <= v)
        return std::numeric_limits<double>::infinity();
    return (n + v) / (n - v) * meanAbsoluteError(ds, rows);
}

void
LinearModel::simplify(const Dataset &ds, std::span<const std::size_t> rows)
{
    double best_err = compensatedError(ds, rows);
    while (!terms_.empty()) {
        // Try removing each surviving term; keep the single removal
        // that improves the compensated error the most.
        double best_candidate_err = best_err;
        std::size_t best_drop = terms_.size();
        LinearModel best_model;

        for (std::size_t drop = 0; drop < terms_.size(); ++drop) {
            std::vector<std::size_t> kept;
            kept.reserve(terms_.size() - 1);
            for (std::size_t j = 0; j < terms_.size(); ++j) {
                if (j != drop)
                    kept.push_back(terms_[j].attr);
            }
            LinearModel candidate = fit(ds, rows, kept);
            const double err = candidate.compensatedError(ds, rows);
            if (err < best_candidate_err) {
                best_candidate_err = err;
                best_drop = drop;
                best_model = std::move(candidate);
            }
        }

        if (best_drop == terms_.size())
            break;
        *this = std::move(best_model);
        best_err = best_candidate_err;
    }
}

std::string
LinearModel::toString(const Schema &schema, int digits) const
{
    std::ostringstream os;
    os << schema.targetName() << " = " << formatDouble(intercept_, digits);
    for (const auto &t : terms_) {
        const char *sign = t.coef < 0.0 ? " - " : " + ";
        os << sign << formatDouble(std::abs(t.coef), digits) << " * "
           << schema.attributeName(t.attr);
    }
    return os.str();
}

void
LinearModel::blendWith(const LinearModel &other, double n, double k)
{
    const double denom = n + k;
    mtperf_assert(denom > 0.0, "degenerate smoothing blend");
    const double wa = n / denom;
    const double wb = k / denom;

    intercept_ = wa * intercept_ + wb * other.intercept_;
    for (auto &t : terms_)
        t.coef *= wa;
    for (const auto &ot : other.terms_) {
        bool found = false;
        for (auto &t : terms_) {
            if (t.attr == ot.attr) {
                t.coef += wb * ot.coef;
                found = true;
                break;
            }
        }
        if (!found)
            terms_.push_back({ot.attr, wb * ot.coef});
    }
    // Drop terms that cancelled to keep the printed models tidy.
    std::erase_if(terms_, [](const Term &t) { return t.coef == 0.0; });
}

LinearModelFitter::LinearModelFitter(const Dataset &ds,
                                     std::span<const std::size_t> rows,
                                     std::vector<std::size_t> attrs)
    : attrs_(std::move(attrs)),
      n_(rows.size()),
      gram_(attrs_.size())
{
    mtperf_assert(n_ > 0, "cannot fit a model on zero rows");
    const std::size_t k = attrs_.size();
    y_.resize(n_);
    cols_.resize(k * n_);
    resid_.resize(n_);
    std::vector<double> vals(k);
    for (std::size_t i = 0; i < n_; ++i) {
        const auto row = ds.row(rows[i]);
        for (std::size_t j = 0; j < k; ++j) {
            vals[j] = row[attrs_[j]];
            cols_[j * n_ + i] = vals[j];
        }
        y_[i] = ds.target(rows[i]);
        gram_.addRow(vals.data(), y_[i]);
    }
}

LinearModel
LinearModelFitter::fitSubset(std::span<const std::size_t> subset) const
{
    LinearModel m;
    if (attrs_.empty()) {
        // Same degenerate path as LinearModel::fit: the mean target,
        // accumulated in row order.
        double acc = 0.0;
        for (double y : y_)
            acc += y;
        m.setIntercept(acc / static_cast<double>(n_));
        return m;
    }
    const auto solution = gram_.solveSubset(subset);
    for (std::size_t j = 0; j < subset.size(); ++j)
        m.addTerm(attrs_[subset[j]], solution[j]);
    m.setIntercept(solution[subset.size()]);
    return m;
}

LinearModel
LinearModelFitter::fit() const
{
    std::vector<std::size_t> all(attrs_.size());
    std::iota(all.begin(), all.end(), 0);
    return fitSubset(all);
}

double
LinearModelFitter::maeOfSubset(const LinearModel &m,
                               std::span<const std::size_t> subset) const
{
    // Accumulate predictions term by term over contiguous columns.
    // The per-row addition order (intercept, then terms in order) and
    // the row-order |residual| sum match LinearModel::predict /
    // meanAbsoluteError exactly, so both paths agree bit-for-bit.
    std::fill(resid_.begin(), resid_.end(), m.intercept());
    const auto &terms = m.terms();
    for (std::size_t t = 0; t < terms.size(); ++t) {
        const double coef = terms[t].coef;
        const double *col = cols_.data() + subset[t] * n_;
        for (std::size_t i = 0; i < n_; ++i)
            resid_[i] += coef * col[i];
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < n_; ++i)
        acc += std::abs(resid_[i] - y_[i]);
    return acc / static_cast<double>(n_);
}

double
LinearModelFitter::meanAbsoluteError(const LinearModel &m) const
{
    std::vector<std::size_t> subset;
    subset.reserve(m.terms().size());
    for (const auto &term : m.terms()) {
        const auto it =
            std::lower_bound(attrs_.begin(), attrs_.end(), term.attr);
        mtperf_assert(it != attrs_.end() && *it == term.attr,
                      "model term outside the fitter's attribute set");
        subset.push_back(
            static_cast<std::size_t>(it - attrs_.begin()));
    }
    return maeOfSubset(m, subset);
}

double
LinearModelFitter::compensated(double mae, std::size_t parameters) const
{
    const auto n = static_cast<double>(n_);
    const auto v = static_cast<double>(parameters);
    if (n <= v)
        return std::numeric_limits<double>::infinity();
    return (n + v) / (n - v) * mae;
}

void
LinearModelFitter::simplify(LinearModel &m) const
{
    // Greedy elimination, same policy as LinearModel::simplify: per
    // round, refit with each surviving term dropped and keep the
    // single removal that improves the compensated error the most.
    std::vector<std::size_t> subset;
    subset.reserve(m.terms().size());
    for (const auto &term : m.terms()) {
        const auto it =
            std::lower_bound(attrs_.begin(), attrs_.end(), term.attr);
        mtperf_assert(it != attrs_.end() && *it == term.attr,
                      "model term outside the fitter's attribute set");
        subset.push_back(
            static_cast<std::size_t>(it - attrs_.begin()));
    }

    double best_err =
        compensated(maeOfSubset(m, subset), m.numParameters());
    while (!subset.empty()) {
        double best_candidate_err = best_err;
        std::size_t best_drop = subset.size();
        LinearModel best_model;

        for (std::size_t drop = 0; drop < subset.size(); ++drop) {
            std::vector<std::size_t> kept;
            kept.reserve(subset.size() - 1);
            for (std::size_t j = 0; j < subset.size(); ++j) {
                if (j != drop)
                    kept.push_back(subset[j]);
            }
            LinearModel candidate = fitSubset(kept);
            const double err = compensated(
                maeOfSubset(candidate, kept), candidate.numParameters());
            if (err < best_candidate_err) {
                best_candidate_err = err;
                best_drop = drop;
                best_model = std::move(candidate);
            }
        }

        if (best_drop == subset.size())
            break;
        subset.erase(subset.begin() +
                     static_cast<std::ptrdiff_t>(best_drop));
        m = std::move(best_model);
        best_err = best_candidate_err;
    }
}

void
LinearRegression::fit(const Dataset &train)
{
    if (train.empty())
        mtperf_fatal("LinearRegression: empty training set");
    std::vector<std::size_t> rows(train.size());
    std::iota(rows.begin(), rows.end(), 0);
    std::vector<std::size_t> attrs(train.numAttributes());
    std::iota(attrs.begin(), attrs.end(), 0);
    model_ = LinearModel::fit(train, rows, attrs);
    if (simplify_)
        model_.simplify(train, rows);
}

double
LinearRegression::predict(std::span<const double> row) const
{
    return model_.predict(row);
}

} // namespace mtperf
