/**
 * @file
 * Multi-variate linear models over dataset attributes.
 *
 * These are the models M5' places at tree nodes: an intercept plus a
 * sparse set of (attribute, coefficient) terms. They support the M5
 * machinery — least-squares fitting over a row subset, the pessimistic
 * (n+v)/(n-v) error compensation, and greedy term elimination — and
 * render themselves the way the paper prints them, e.g.
 *
 *   CPI = 0.52 + 139.91 * ItlbM + 2.22 * DtlbL0LdM + 6.69 * L1IM
 */

#ifndef MTPERF_ML_LINEAR_LINEAR_MODEL_H_
#define MTPERF_ML_LINEAR_LINEAR_MODEL_H_

#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "math/least_squares.h"
#include "ml/regressor.h"

namespace mtperf {

/** A sparse linear model: target = intercept + sum coef_i * attr_i. */
class LinearModel
{
  public:
    /** One model term. */
    struct Term
    {
        std::size_t attr = 0; //!< attribute index in the schema
        double coef = 0.0;
    };

    /** Constant model predicting @p intercept. */
    static LinearModel constant(double intercept);

    /**
     * Ordinary least squares over the rows of @p ds selected by
     * @p rows, using only the attributes in @p attrs. Falls back to
     * ridge when the system is rank-deficient (e.g., an event that
     * never fires inside a leaf).
     */
    static LinearModel fit(const Dataset &ds,
                           std::span<const std::size_t> rows,
                           std::span<const std::size_t> attrs);

    double intercept() const { return intercept_; }
    void setIntercept(double b) { intercept_ = b; }
    const std::vector<Term> &terms() const { return terms_; }

    /**
     * Set the coefficient of @p attr, appending a new term or
     * replacing an existing one (used when deserializing models).
     */
    void addTerm(std::size_t attr, double coef);

    /** Coefficient for @p attr, or 0 when the term is absent. */
    double coefficient(std::size_t attr) const;

    /** Predict for one attribute row. */
    double predict(std::span<const double> row) const;

    /** Mean absolute residual over @p rows of @p ds. */
    double meanAbsoluteError(const Dataset &ds,
                             std::span<const std::size_t> rows) const;

    /**
     * M5's pessimistic error estimate: MAE scaled by (n+v)/(n-v)
     * where v is the number of fitted parameters (terms + intercept).
     * Returns +inf when n <= v, so over-parameterized models always
     * lose pruning comparisons.
     */
    double compensatedError(const Dataset &ds,
                            std::span<const std::size_t> rows) const;

    /**
     * Greedily drop terms while doing so lowers the compensated error
     * (refitting the survivors after each drop). This is M5's model
     * simplification step; it trades a slightly larger raw residual
     * for fewer parameters.
     */
    void simplify(const Dataset &ds, std::span<const std::size_t> rows);

    /** Number of fitted parameters (terms + intercept). */
    std::size_t numParameters() const { return terms_.size() + 1; }

    /**
     * Render as "<target> = b + c1 * A1 + ...". Coefficients are
     * printed with @p digits decimals; negative coefficients render
     * as "- |c| * A".
     */
    std::string toString(const Schema &schema, int digits = 4) const;

    /**
     * Blend with another model over the same schema:
     * this = (n * this + k * other) / (n + k). Used to compile M5
     * smoothing into leaf models.
     */
    void blendWith(const LinearModel &other, double n, double k);

  private:
    double intercept_ = 0.0;
    std::vector<Term> terms_;
};

/**
 * One node's fitting context: gathers the node's rows once (targets
 * and the chosen attribute columns, column-major) and accumulates the
 * GramSystem over them, so the node's base fit and every candidate
 * refit during M5 simplification are solved from sufficient
 * statistics in O(k^3) instead of re-touching the rows with an
 * O(n k^2) QR factorization per candidate. Error evaluation stays
 * exact — MAE is L1 and must visit rows — but runs over the gathered
 * contiguous columns in the same accumulation order as
 * LinearModel::meanAbsoluteError, so the two agree bit-for-bit.
 *
 * One instance serves one (row set, attribute superset) pair; it is
 * cheap enough to build per tree node and not thread-safe.
 */
class LinearModelFitter
{
  public:
    /** @param attrs attribute superset, strictly increasing. */
    LinearModelFitter(const Dataset &ds,
                      std::span<const std::size_t> rows,
                      std::vector<std::size_t> attrs);

    /** OLS over the full attribute superset (Gram-solved). */
    LinearModel fit() const;

    /**
     * M5's greedy term elimination (same policy as
     * LinearModel::simplify), with every candidate refit solved from
     * the Gram system. @p m must have been produced by fit() or a
     * previous simplify() over this fitter.
     */
    void simplify(LinearModel &m) const;

    /** MAE of @p m over the fitter's rows (terms must be in attrs). */
    double meanAbsoluteError(const LinearModel &m) const;

    std::size_t rowCount() const { return n_; }

  private:
    LinearModel fitSubset(std::span<const std::size_t> subset) const;
    double maeOfSubset(const LinearModel &m,
                       std::span<const std::size_t> subset) const;
    double compensated(double mae, std::size_t parameters) const;

    std::vector<std::size_t> attrs_;
    std::size_t n_;
    std::vector<double> y_;    //!< gathered targets, row order
    std::vector<double> cols_; //!< column-major attrs_ x n_ values
    GramSystem gram_;
    mutable std::vector<double> resid_; //!< prediction scratch
};

/**
 * Global multiple linear regression baseline: a single LinearModel
 * over all attributes, optionally simplified. This is the classical
 * "one formula for the whole workload" approach the paper improves on.
 */
class LinearRegression : public Regressor
{
  public:
    /** @param simplify run M5-style greedy term elimination when true. */
    explicit LinearRegression(bool simplify = false)
        : simplify_(simplify)
    {
    }

    void fit(const Dataset &train) override;
    double predict(std::span<const double> row) const override;
    std::string name() const override { return "LinearRegression"; }

    std::unique_ptr<Regressor>
    clone() const override
    {
        return std::make_unique<LinearRegression>(simplify_);
    }

    /** The fitted model. @pre fit() has been called. */
    const LinearModel &model() const { return model_; }

  private:
    bool simplify_;
    LinearModel model_;
};

} // namespace mtperf

#endif // MTPERF_ML_LINEAR_LINEAR_MODEL_H_
