#include "ml/eval/metrics.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "math/stats.h"

namespace mtperf {

std::string
RegressionMetrics::summary() const
{
    std::ostringstream os;
    os.precision(4);
    os << "C=" << correlation << " MAE=" << mae << " RMSE=" << rmse
       << " RAE=" << rae * 100.0 << "% RRSE=" << rrse * 100.0 << "%"
       << " (n=" << n << ")";
    return os.str();
}

RegressionMetrics
computeMetrics(std::span<const double> actual,
               std::span<const double> predicted, double naive_mean)
{
    mtperf_assert(actual.size() == predicted.size(),
                  "metrics need equal-length actual/predicted");
    RegressionMetrics m;
    m.n = actual.size();
    if (m.n == 0)
        return m;

    double abs_err = 0.0, sq_err = 0.0;
    double naive_abs = 0.0, naive_sq = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        const double e = predicted[i] - actual[i];
        abs_err += std::abs(e);
        sq_err += e * e;
        const double ne = naive_mean - actual[i];
        naive_abs += std::abs(ne);
        naive_sq += ne * ne;
    }
    const auto n = static_cast<double>(m.n);
    m.mae = abs_err / n;
    m.rmse = std::sqrt(sq_err / n);
    m.rae = naive_abs > 0.0 ? abs_err / naive_abs : 0.0;
    m.rrse = naive_sq > 0.0 ? std::sqrt(sq_err / naive_sq) : 0.0;
    m.correlation = correlation(actual, predicted);
    return m;
}

RegressionMetrics
computeMetrics(std::span<const double> actual,
               std::span<const double> predicted)
{
    return computeMetrics(actual, predicted, mean(actual));
}

} // namespace mtperf
