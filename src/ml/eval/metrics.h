/**
 * @file
 * Regression quality metrics.
 *
 * The paper evaluates with three metrics — the correlation coefficient
 * (C), the mean absolute error (MAE) and the relative absolute error
 * (RAE) — following its companion study [Ould-Ahmed-Vall et al.,
 * SMART'07]. RMSE and RRSE are included because WEKA reports them
 * alongside and the ablation benches use them.
 */

#ifndef MTPERF_ML_EVAL_METRICS_H_
#define MTPERF_ML_EVAL_METRICS_H_

#include <span>
#include <string>

namespace mtperf {

/** A bundle of regression metrics over one evaluation set. */
struct RegressionMetrics
{
    std::size_t n = 0;        //!< number of evaluated points
    double correlation = 0.0; //!< Pearson C between actual and predicted
    double mae = 0.0;         //!< mean |error|
    double rmse = 0.0;        //!< root mean squared error
    double rae = 0.0;         //!< MAE relative to the naive mean predictor
    double rrse = 0.0;        //!< RMSE relative to the naive mean predictor

    /** One-line summary, e.g. "C=0.984 MAE=0.051 RAE=7.8%". */
    std::string summary() const;
};

/**
 * Compute all metrics.
 *
 * @param actual observed targets.
 * @param predicted model outputs, same length.
 * @param naive_mean the mean used by the naive baseline in RAE/RRSE.
 *        WEKA uses the *training-set* target mean; pass the training
 *        mean when evaluating a fold, or the mean of @p actual for
 *        pooled reporting.
 */
RegressionMetrics computeMetrics(std::span<const double> actual,
                                 std::span<const double> predicted,
                                 double naive_mean);

/** Overload that uses mean(actual) as the naive predictor. */
RegressionMetrics computeMetrics(std::span<const double> actual,
                                 std::span<const double> predicted);

} // namespace mtperf

#endif // MTPERF_ML_EVAL_METRICS_H_
