#include "ml/eval/cross_validation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/folds.h"
#include "math/stats.h"
#include "ml/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mtperf {

namespace {

double
meanOf(const std::vector<RegressionMetrics> &folds,
       double RegressionMetrics::*field)
{
    if (folds.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto &m : folds)
        acc += m.*field;
    return acc / static_cast<double>(folds.size());
}

} // namespace

double
CrossValidationResult::meanFoldCorrelation() const
{
    return meanOf(perFold, &RegressionMetrics::correlation);
}

double
CrossValidationResult::meanFoldMae() const
{
    return meanOf(perFold, &RegressionMetrics::mae);
}

double
CrossValidationResult::meanFoldRae() const
{
    return meanOf(perFold, &RegressionMetrics::rae);
}

CrossValidationResult
crossValidate(const Regressor &prototype, const Dataset &ds,
              std::size_t k, std::uint64_t seed)
{
    if (ds.empty())
        mtperf_fatal("cross-validation on an empty dataset");

    // The fold assignment is fixed before any fold trains, so the
    // parallel schedule below cannot influence it.
    Rng rng(seed);
    const auto folds = kfoldIndices(ds.size(), k, rng);

    CrossValidationResult result;
    result.predictions.assign(ds.size(), 0.0);
    result.perFold.resize(folds.size());

    obs::ScopedSpan cv_span("cv", "cv.run k=" + std::to_string(k));

    // Each fold touches only perFold[f] and the prediction slots of
    // its own (disjoint) test rows; the dataset is shared read-only.
    globalPool().parallelFor(folds.size(), [&](std::size_t f) {
        obs::ScopedSpan span("cv", "cv.fold " + std::to_string(f + 1));
        const Split split = splitForFold(folds, f);
        const Dataset train = trainSubset(ds, split);

        auto learner = prototype.clone();
        mtperf_assert(learner != nullptr,
                      "clone() returned a null learner");
        learner->fit(train);

        // Gather the fold's test rows into one contiguous block and
        // predict them as a batch: one virtual call per fold instead
        // of one per row (and learners with a parallel predictBatch
        // run it inline here, bit-identical to the per-row loop).
        const std::size_t width = ds.numAttributes();
        std::vector<double> test_rows(split.test.size() * width);
        std::vector<double> actual;
        actual.reserve(split.test.size());
        for (std::size_t i = 0; i < split.test.size(); ++i) {
            const auto row = ds.row(split.test[i]);
            std::copy(row.begin(), row.end(),
                      test_rows.begin() +
                          static_cast<std::ptrdiff_t>(i * width));
            actual.push_back(ds.target(split.test[i]));
        }
        std::vector<double> predicted(split.test.size());
        learner->predictBatch(test_rows, width, predicted);
        for (std::size_t i = 0; i < split.test.size(); ++i)
            result.predictions[split.test[i]] = predicted[i];

        // WEKA computes RAE/RRSE against the training-set mean.
        const double train_mean = mean(train.targets());
        result.perFold[f] =
            computeMetrics(actual, predicted, train_mean);

        static obs::Counter &cvFolds = obs::counter("cv.folds");
        static obs::Counter &cvRows = obs::counter("cv.rows_predicted");
        cvFolds.increment();
        cvRows.add(split.test.size());
    });

    result.pooled = computeMetrics(ds.targets(), result.predictions);
    return result;
}

CrossValidationResult
crossValidate(const std::string &learnerSpec, const Dataset &ds,
              std::size_t k, std::uint64_t seed)
{
    const auto prototype = RegressorFactory::create(learnerSpec);
    return crossValidate(*prototype, ds, k, seed);
}

} // namespace mtperf
