/**
 * @file
 * k-fold cross-validation engine.
 *
 * The paper validates with 10-fold cross-validation: the dataset is
 * cut into 10 disjoint folds, each fold serves once as the test set
 * for a model trained on the other nine, and the metrics average over
 * folds. This engine also keeps the out-of-fold prediction for every
 * row so Figure 3 (predicted vs. actual scatter) falls straight out.
 */

#ifndef MTPERF_ML_EVAL_CROSS_VALIDATION_H_
#define MTPERF_ML_EVAL_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "ml/eval/metrics.h"
#include "ml/regressor.h"

namespace mtperf {

/** Outcome of one cross-validation run. */
struct CrossValidationResult
{
    /** Metrics per fold, computed with the fold's training mean. */
    std::vector<RegressionMetrics> perFold;

    /**
     * Pooled metrics over all out-of-fold predictions (each point is
     * predicted by the model that never saw it).
     */
    RegressionMetrics pooled;

    /** Out-of-fold prediction for every dataset row, in row order. */
    std::vector<double> predictions;

    /** Mean of a per-fold metric (averaged the way WEKA reports). */
    double meanFoldCorrelation() const;
    double meanFoldMae() const;
    double meanFoldRae() const;
};

/** Factory producing a fresh, untrained learner for each fold. */
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/**
 * Run @p k -fold cross-validation of the learner made by @p factory on
 * @p ds. Folds are shuffled with @p seed.
 *
 * @throw FatalError when k is out of range for the dataset.
 */
CrossValidationResult crossValidate(const RegressorFactory &factory,
                                    const Dataset &ds, std::size_t k,
                                    std::uint64_t seed);

} // namespace mtperf

#endif // MTPERF_ML_EVAL_CROSS_VALIDATION_H_
