/**
 * @file
 * k-fold cross-validation engine.
 *
 * The paper validates with 10-fold cross-validation: the dataset is
 * cut into 10 disjoint folds, each fold serves once as the test set
 * for a model trained on the other nine, and the metrics average over
 * folds. This engine also keeps the out-of-fold prediction for every
 * row so Figure 3 (predicted vs. actual scatter) falls straight out.
 *
 * Folds are independent, so they train concurrently on the global
 * thread pool. The fold assignment is drawn from the seed before any
 * fold runs and every fold writes only its own rows/slot, so the
 * result is bit-identical for every thread count (including 1, which
 * takes the plain serial path).
 */

#ifndef MTPERF_ML_EVAL_CROSS_VALIDATION_H_
#define MTPERF_ML_EVAL_CROSS_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/eval/metrics.h"
#include "ml/regressor.h"

namespace mtperf {

/** Outcome of one cross-validation run. */
struct CrossValidationResult
{
    /** Metrics per fold, computed with the fold's training mean. */
    std::vector<RegressionMetrics> perFold;

    /**
     * Pooled metrics over all out-of-fold predictions (each point is
     * predicted by the model that never saw it).
     */
    RegressionMetrics pooled;

    /** Out-of-fold prediction for every dataset row, in row order. */
    std::vector<double> predictions;

    /** Mean of a per-fold metric (averaged the way WEKA reports). */
    double meanFoldCorrelation() const;
    double meanFoldMae() const;
    double meanFoldRae() const;
};

/**
 * Run @p k -fold cross-validation of @p prototype on @p ds: each fold
 * trains a fresh prototype.clone() on the other k-1 folds. Folds are
 * shuffled with @p seed and trained concurrently on the global pool.
 *
 * @throw FatalError when k is out of range for the dataset.
 */
CrossValidationResult crossValidate(const Regressor &prototype,
                                    const Dataset &ds, std::size_t k,
                                    std::uint64_t seed);

/**
 * Convenience overload: the learner is created from a
 * RegressorFactory spec string such as "m5prime:min-instances=430"
 * (see ml/registry.h).
 */
CrossValidationResult crossValidate(const std::string &learnerSpec,
                                    const Dataset &ds, std::size_t k,
                                    std::uint64_t seed);

} // namespace mtperf

#endif // MTPERF_ML_EVAL_CROSS_VALIDATION_H_
