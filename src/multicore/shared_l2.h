/**
 * @file
 * A shared last-level cache with per-core interference accounting.
 *
 * SharedL2 implements uarch::L2Port over one tag-only Cache that N
 * cores hit concurrently. On top of the plain hit/miss behaviour it
 * adds the three things a private L2 cannot express:
 *
 *  - Arbitration. The cache has one tag pipeline; an access landing
 *    in the same cycle as accesses from *other* cores queues one
 *    cycle behind each of them. Cores are stepped in (cycle, core id)
 *    order (the MulticoreSystem contract), so "before" is
 *    deterministic: the lowest core id wins the tie and pays no
 *    delay. A core never queues behind its own same-cycle accesses —
 *    the private hierarchy already timed those — so a solo core pays
 *    zero delay everywhere, exactly like a private L2.
 *
 *  - Occupancy tracking. Every physical line slot remembers which
 *    core last touched it. When a fill displaces a valid line owned
 *    by a *different* core, the victim core's
 *    l2OccupancyEvictedByOther advances and the lost line address is
 *    recorded in a direct-mapped stolen-line directory; when the
 *    victim core later demand-misses on that same line, its
 *    l2SharedMisses advances — the canonical "my working set was
 *    pushed out" signal. The directory is direct-mapped and bounded
 *    (collisions overwrite, deterministically), so a co-run over an
 *    arbitrarily large footprint cannot grow memory without bound;
 *    a collision can only undercount shared misses, never invent one.
 *
 *  - Address-space isolation. Co-run lanes model independent
 *    processes, whose physical pages never alias, so the port salts
 *    every address with the core id in bit 44 and up before it
 *    touches the tags. Set indices sit far below bit 44, so a solo
 *    core (any id) sees the exact conflict pattern of a private L2,
 *    and core 0's addresses are bit-for-bit unsalted.
 *
 *  - A shared next-line streamer. The L2 prefetcher is one stream: a
 *    demand miss from the core that missed last extends the stream
 *    exactly as the private prefetcher would, but a demand miss from
 *    a different core *retrains* it — the previous owner's
 *    prefetchCancellations advances and the retraining miss issues no
 *    fills (the stream needs one miss to lock on). A solo core in a
 *    shared hierarchy therefore sees the exact private fill pattern,
 *    and all three contention counters stay structurally zero.
 */

#ifndef MTPERF_MULTICORE_SHARED_L2_H_
#define MTPERF_MULTICORE_SHARED_L2_H_

#include <cstdint>
#include <vector>

#include "uarch/cache.h"
#include "uarch/l2_port.h"

namespace mtperf::multicore {

/** Per-core interference tallies kept by the shared L2. */
struct SharedL2Stats
{
    std::uint64_t l2SharedMisses = 0;
    std::uint64_t l2OccupancyEvictedByOther = 0;
    std::uint64_t prefetchCancellations = 0;
};

/** N-core shared L2 with owner tracking and a shared streamer. */
class SharedL2 final : public uarch::L2Port
{
  public:
    /**
     * Build a shared cache of @p config geometry for @p num_cores
     * cores. The cache's own prefetcher is disabled (the shared
     * streamer replaces it); @p config's nextLinePrefetch and
     * prefetchDegree decide whether and how far the shared streamer
     * fills.
     */
    SharedL2(const uarch::CacheConfig &config, std::uint32_t num_cores);

    uarch::L2AccessResult access(std::uint32_t core, uarch::Addr addr,
                                 uarch::L2AccessKind kind,
                                 uarch::Cycle cycle) override;

    std::uint32_t numCores() const { return numCores_; }
    const SharedL2Stats &stats(std::uint32_t core) const
    {
        return stats_[core];
    }
    const uarch::Cache &cache() const { return cache_; }

    /** Invalidate lines, clear owners, directory and statistics. */
    void reset();

  private:
    /** One stolen-line directory slot (direct-mapped). */
    struct LostLine
    {
        uarch::Addr lineAddr = 0;
        std::uint32_t owner = 0;
        bool valid = false;
    };

    void noteFill(std::uint32_t core,
                  const uarch::CacheAccessOutcome &outcome,
                  uarch::Addr line_addr);
    LostLine &lostSlot(uarch::Addr line_addr);

    uarch::Cache cache_;
    std::uint32_t numCores_;
    std::uint32_t lineBytes_;
    bool prefetch_;
    std::uint32_t prefetchDegree_;

    std::vector<std::uint32_t> owner_; //!< per line slot: last toucher
    std::vector<LostLine> lost_;       //!< stolen-line directory
    std::uint64_t lostMask_ = 0;
    std::vector<SharedL2Stats> stats_;

    static constexpr std::uint32_t kNoCore = ~0U;
    std::uint32_t lastMissCore_ = kNoCore; //!< streamer training state

    uarch::Cycle lastCycle_ = 0;
    std::uint32_t sameCycleAccesses_ = 0; //!< total in lastCycle_
    std::vector<std::uint32_t> coreCycleAccesses_; //!< per core
    bool anyAccess_ = false;
};

} // namespace mtperf::multicore

#endif // MTPERF_MULTICORE_SHARED_L2_H_
