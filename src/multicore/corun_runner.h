/**
 * @file
 * Sectioned co-run execution over a multicore system.
 *
 * A co-run scenario pins one workload per core and steps the whole
 * system under the MulticoreSystem arbitration contract, snapshotting
 * each core's merged counter file (core events + its shared-L2
 * contention events) at that core's section boundaries. Each lane
 * mirrors the single-core runner's seeding exactly, salted by its
 * core id, so `--corun a,a` runs two *different* deterministic
 * instances of `a` — and a one-core scenario reproduces the private
 * hierarchy's instruction stream verbatim.
 *
 * Scenarios are independent simulations; the suite runner maps them
 * over the global pool and merges in scenario order, so output bytes
 * are independent of --threads.
 */

#ifndef MTPERF_MULTICORE_CORUN_RUNNER_H_
#define MTPERF_MULTICORE_CORUN_RUNNER_H_

#include <string>
#include <vector>

#include "workload/phase.h"
#include "workload/runner.h"

namespace mtperf::multicore {

/** One co-run: lane i runs on core i. */
struct CorunScenario
{
    std::vector<workload::WorkloadSpec> lanes;
};

/** The scenario's label: lane workload names joined with '+'. */
std::string corunSetName(const CorunScenario &scenario);

/**
 * Run one scenario; records carry core ids and the co-run label,
 * ordered core by core (each core's sections in execution order).
 */
std::vector<workload::SectionRecord> runCorunScenario(
    const CorunScenario &scenario,
    const workload::RunnerOptions &options);

/** Run every scenario (global pool), merged in scenario order. */
std::vector<workload::SectionRecord> runCorunSuite(
    const std::vector<CorunScenario> &scenarios,
    const workload::RunnerOptions &options);

} // namespace mtperf::multicore

#endif // MTPERF_MULTICORE_CORUN_RUNNER_H_
