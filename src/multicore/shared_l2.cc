#include "multicore/shared_l2.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace mtperf::multicore {

namespace {

/**
 * Directory slots: 4x the cache's line count (min 64Ki), rounded to a
 * power of two. Big enough that a working set a few times the cache
 * rarely collides, small enough to bound memory for any footprint.
 */
std::uint64_t
directorySize(const uarch::CacheConfig &config)
{
    const std::uint64_t lines = config.sizeBytes / config.lineBytes;
    return std::bit_ceil(std::max<std::uint64_t>(4 * lines, 64 * 1024));
}

uarch::CacheConfig
noInternalPrefetch(uarch::CacheConfig config)
{
    // The shared streamer issues fills explicitly so it can track
    // ownership; the cache's built-in prefetcher must stay out.
    config.nextLinePrefetch = false;
    return config;
}

} // namespace

SharedL2::SharedL2(const uarch::CacheConfig &config,
                   std::uint32_t num_cores)
    : cache_(noInternalPrefetch(config)),
      numCores_(num_cores),
      lineBytes_(config.lineBytes),
      prefetch_(config.nextLinePrefetch),
      prefetchDegree_(config.prefetchDegree),
      stats_(num_cores)
{
    if (num_cores == 0)
        mtperf_fatal("shared L2 needs at least one core");
    owner_.assign(config.sizeBytes / config.lineBytes, kNoCore);
    coreCycleAccesses_.assign(num_cores, 0);
    const std::uint64_t slots = directorySize(config);
    lost_.assign(slots, LostLine{});
    lostMask_ = slots - 1;
}

SharedL2::LostLine &
SharedL2::lostSlot(uarch::Addr line_addr)
{
    return lost_[line_addr & lostMask_];
}

void
SharedL2::noteFill(std::uint32_t core,
                   const uarch::CacheAccessOutcome &outcome,
                   uarch::Addr line_addr)
{
    if (outcome.evictedValid) {
        const std::uint32_t victim = owner_[outcome.lineIndex];
        if (victim != kNoCore && victim != core) {
            ++stats_[victim].l2OccupancyEvictedByOther;
            LostLine &slot = lostSlot(outcome.evictedLineAddr);
            slot.lineAddr = outcome.evictedLineAddr;
            slot.owner = victim;
            slot.valid = true;
        }
    }
    // The filled line is resident again; whoever lost it earlier has
    // been repaid, so the directory entry (if it is this line's) dies.
    LostLine &slot = lostSlot(line_addr);
    if (slot.valid && slot.lineAddr == line_addr)
        slot.valid = false;
    owner_[outcome.lineIndex] = core;
}

uarch::L2AccessResult
SharedL2::access(std::uint32_t core, uarch::Addr addr,
                 uarch::L2AccessKind kind, uarch::Cycle cycle)
{
    (void)kind; // all demand kinds arbitrate and track identically

    // Same-cycle arbitration: accesses arrive in (cycle, core id)
    // order, so every same-cycle access another core already issued is
    // ahead in the queue and costs one extra cycle. In a tie the
    // lowest core id pays nothing. A core never queues behind itself —
    // its private hierarchy already timed its own accesses — so a solo
    // core sees zero delay always, exactly like a private L2.
    if (!anyAccess_ || cycle != lastCycle_) {
        anyAccess_ = true;
        lastCycle_ = cycle;
        sameCycleAccesses_ = 0;
        std::fill(coreCycleAccesses_.begin(), coreCycleAccesses_.end(),
                  0u);
    }
    const uarch::Cycle queue_delay =
        sameCycleAccesses_ - coreCycleAccesses_[core];
    ++sameCycleAccesses_;
    ++coreCycleAccesses_[core];

    // Disjoint per-process physical address spaces: salt the core id
    // into bits the working sets can never reach (see the class doc).
    addr |= static_cast<uarch::Addr>(core) << 44;

    const uarch::Addr line_addr = cache_.lineAddrOf(addr);
    const uarch::CacheAccessOutcome outcome = cache_.accessTracked(addr);
    if (outcome.hit) {
        owner_[outcome.lineIndex] = core;
        return {true, queue_delay};
    }

    // Demand miss. If this core previously lost this very line to
    // another core's fill, that is a shared miss: contention, not
    // capacity of its own making.
    {
        const LostLine &slot = lostSlot(line_addr);
        if (slot.valid && slot.lineAddr == line_addr &&
            slot.owner == core)
            ++stats_[core].l2SharedMisses;
    }
    noteFill(core, outcome, line_addr);

    if (prefetch_) {
        if (lastMissCore_ != kNoCore && lastMissCore_ != core) {
            // Another core owned the stream; this miss retrains it
            // and issues no fills.
            ++stats_[lastMissCore_].prefetchCancellations;
        } else {
            for (std::uint32_t d = 1; d <= prefetchDegree_; ++d) {
                const uarch::Addr pf_addr =
                    addr + d * std::uint64_t(lineBytes_);
                const uarch::CacheAccessOutcome fill =
                    cache_.fillTracked(pf_addr);
                if (!fill.hit)
                    noteFill(core, fill, cache_.lineAddrOf(pf_addr));
                else
                    owner_[fill.lineIndex] = core;
            }
        }
        lastMissCore_ = core;
    }
    return {false, queue_delay};
}

void
SharedL2::reset()
{
    cache_.reset();
    std::fill(owner_.begin(), owner_.end(), kNoCore);
    std::fill(lost_.begin(), lost_.end(), LostLine{});
    std::fill(stats_.begin(), stats_.end(), SharedL2Stats{});
    lastMissCore_ = kNoCore;
    lastCycle_ = 0;
    sameCycleAccesses_ = 0;
    std::fill(coreCycleAccesses_.begin(), coreCycleAccesses_.end(), 0u);
    anyAccess_ = false;
}

} // namespace mtperf::multicore
