/**
 * @file
 * N cores over one shared L2, stepped deterministically.
 *
 * The system owns the shared cache and the cores; each core keeps its
 * private L1s, TLBs, branch predictor and decoder and routes L2-level
 * traffic through the shared port. Stepping follows one contract,
 * stated once and relied on everywhere (arbitration, checkpoints,
 * bit-identity tests):
 *
 *   the next core to execute an instruction is the runnable core
 *   with the minimal currentCycle(); ties break to the lowest
 *   core id.
 *
 * Because the schedule is a pure function of simulated state, a co-run
 * is bit-identical at any host --threads setting and across
 * checkpoint/resume.
 */

#ifndef MTPERF_MULTICORE_SYSTEM_H_
#define MTPERF_MULTICORE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "multicore/shared_l2.h"
#include "uarch/core.h"

namespace mtperf::multicore {

/** N-core machine: private L1 hierarchies over one shared L2. */
class MulticoreSystem
{
  public:
    /** Build @p num_cores cores of @p config sharing config.l2. */
    explicit MulticoreSystem(const uarch::CoreConfig &config,
                             std::uint32_t num_cores);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    uarch::Core &core(std::uint32_t i) { return *cores_[i]; }
    const uarch::Core &core(std::uint32_t i) const { return *cores_[i]; }
    SharedL2 &sharedL2() { return sharedL2_; }
    const SharedL2 &sharedL2() const { return sharedL2_; }

    /**
     * The stepping contract: among cores with @p runnable[i] true,
     * the index with the minimal currentCycle(), ties to the lowest
     * core id.
     * @pre at least one core is runnable.
     */
    std::uint32_t nextCore(const std::vector<bool> &runnable) const;

    /**
     * Core @p i's counter file with this core's shared-L2 contention
     * events merged in (the core itself never sees them).
     */
    uarch::EventCounters counters(std::uint32_t i) const;

    /** Full reset of every core and the shared cache. */
    void reset();

  private:
    SharedL2 sharedL2_;
    std::vector<std::unique_ptr<uarch::Core>> cores_;
};

} // namespace mtperf::multicore

#endif // MTPERF_MULTICORE_SYSTEM_H_
