#include "multicore/corun_runner.h"

#include <cmath>
#include <optional>

#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "multicore/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/stream_gen.h"

namespace mtperf::multicore {

namespace {

/** FNV-1a of a workload name (same derivation as the solo runner). */
std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t hash = 1469598103934665603ULL;
    for (char c : name)
        hash = (hash ^ static_cast<unsigned char>(c)) *
               1099511628211ULL;
    return hash;
}

/**
 * One core's workload execution state. The seeding mirrors the solo
 * runner exactly — options.seed ^ FNV(name) with the same per-phase
 * generator derivation — plus a golden-ratio core salt, so identical
 * workloads on different cores run distinct deterministic streams.
 */
struct Lane
{
    const workload::WorkloadSpec *spec = nullptr;
    std::uint64_t laneSeed = 0;
    Rng jitterRng{0};
    std::size_t phaseIndex = 0;
    std::size_t sectionsInPhase = 0;
    std::size_t sectionInPhase = 0;
    std::size_t sectionIndex = 0; //!< lane-local running section index
    std::uint64_t instrInSection = 0;
    std::optional<workload::StreamGenerator> gen;
    uarch::EventCounters before;
    std::vector<workload::SectionRecord> records;
    bool done = false;
};

std::size_t
scaledSections(const workload::PhaseSpec &phase, double scale)
{
    return static_cast<std::size_t>(std::llround(
        static_cast<double>(phase.sections) * scale));
}

/** Enter the next phase with a nonzero section budget, if any. */
void
advancePhase(Lane &lane, const workload::RunnerOptions &options)
{
    while (lane.phaseIndex < lane.spec->phases.size()) {
        const auto &phase = lane.spec->phases[lane.phaseIndex];
        const std::size_t sections =
            scaledSections(phase, options.sectionScale);
        if (sections == 0) {
            ++lane.phaseIndex;
            continue;
        }
        lane.sectionsInPhase = sections;
        lane.sectionInPhase = 0;
        lane.gen.emplace(phase.params,
                         lane.laneSeed ^
                             (lane.sectionIndex * 0x9e3779b9ULL + 1));
        return;
    }
    lane.done = true;
}

} // namespace

std::string
corunSetName(const CorunScenario &scenario)
{
    std::string name;
    for (std::size_t i = 0; i < scenario.lanes.size(); ++i) {
        if (i > 0)
            name += '+';
        name += scenario.lanes[i].name;
    }
    return name;
}

std::vector<workload::SectionRecord>
runCorunScenario(const CorunScenario &scenario,
                 const workload::RunnerOptions &options)
{
    if (scenario.lanes.empty())
        mtperf_fatal("co-run scenario has no lanes");
    if (options.instructionsPerSection == 0)
        mtperf_fatal("instructionsPerSection must be positive");
    for (const auto &spec : scenario.lanes) {
        if (spec.phases.empty())
            mtperf_fatal("workload '", spec.name, "' has no phases");
    }
    MTPERF_FAULT_POINT("sim.workload.fail");

    const std::string set_name = corunSetName(scenario);
    obs::ScopedSpan span("sim", "sim.corun " + set_name);
    static obs::Counter &sectionsSimulated =
        obs::counter("sim.sections_simulated");
    static obs::Counter &instructionsExecuted =
        obs::counter("sim.instructions_executed");
    static obs::Counter &corunScenarios =
        obs::counter("sim.corun.scenarios");
    static obs::Counter &corunSharedMisses =
        obs::counter("sim.corun.l2_shared_misses");
    static obs::Counter &corunEvictedByOther =
        obs::counter("sim.corun.l2_evicted_by_other");
    static obs::Counter &corunPrefetchCancels =
        obs::counter("sim.corun.prefetch_cancellations");

    const auto num_cores =
        static_cast<std::uint32_t>(scenario.lanes.size());
    MulticoreSystem system(options.coreConfig, num_cores);

    std::vector<Lane> lanes(num_cores);
    std::vector<bool> runnable(num_cores, false);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        Lane &lane = lanes[c];
        lane.spec = &scenario.lanes[c];
        lane.laneSeed = options.seed ^ nameHash(lane.spec->name) ^
                        (c * 0x9e3779b97f4a7c15ULL);
        lane.jitterRng = Rng(lane.laneSeed);
        advancePhase(lane, options);
        runnable[c] = !lane.done;
    }

    auto any_runnable = [&runnable] {
        for (bool r : runnable)
            if (r)
                return true;
        return false;
    };

    while (any_runnable()) {
        const std::uint32_t c = system.nextCore(runnable);
        Lane &lane = lanes[c];
        const auto &phase = lane.spec->phases[lane.phaseIndex];

        if (lane.instrInSection == 0) {
            lane.gen->setParams(workload::jitterPhase(
                phase.params, options.paramJitter, lane.jitterRng));
            lane.before = system.counters(c);
        }

        system.core(c).execute(lane.gen->next());

        if (++lane.instrInSection < options.instructionsPerSection)
            continue;
        lane.instrInSection = 0;

        workload::SectionRecord record;
        record.workload = lane.spec->name;
        record.phase = phase.params.name;
        record.sectionIndex = lane.sectionIndex++;
        record.counters = system.counters(c).delta(lane.before);
        record.core = c;
        record.corunSet = set_name;
        lane.records.push_back(std::move(record));

        if (++lane.sectionInPhase == lane.sectionsInPhase) {
            ++lane.phaseIndex;
            advancePhase(lane, options);
            runnable[c] = !lane.done;
        }
    }

    std::vector<workload::SectionRecord> records;
    std::size_t total = 0;
    for (const auto &lane : lanes)
        total += lane.records.size();
    records.reserve(total);
    for (auto &lane : lanes) {
        records.insert(records.end(),
                       std::make_move_iterator(lane.records.begin()),
                       std::make_move_iterator(lane.records.end()));
    }

    sectionsSimulated.add(records.size());
    instructionsExecuted.add(records.size() *
                             options.instructionsPerSection);
    corunScenarios.add(1);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const SharedL2Stats &stats = system.sharedL2().stats(c);
        corunSharedMisses.add(stats.l2SharedMisses);
        corunEvictedByOther.add(stats.l2OccupancyEvictedByOther);
        corunPrefetchCancels.add(stats.prefetchCancellations);
    }
    return records;
}

std::vector<workload::SectionRecord>
runCorunSuite(const std::vector<CorunScenario> &scenarios,
              const workload::RunnerOptions &options)
{
    // Scenarios are independent simulations; each is serial inside
    // (the arbitration contract fixes the instruction interleaving),
    // so mapping over the pool and merging in scenario order keeps
    // the record stream byte-identical at any --threads.
    auto per_scenario =
        parallelMap(globalPool(), scenarios.size(), [&](std::size_t i) {
            return runCorunScenario(scenarios[i], options);
        });

    std::vector<workload::SectionRecord> all;
    std::size_t total = 0;
    for (const auto &records : per_scenario)
        total += records.size();
    all.reserve(total);
    for (auto &records : per_scenario) {
        all.insert(all.end(), std::make_move_iterator(records.begin()),
                   std::make_move_iterator(records.end()));
    }
    return all;
}

} // namespace mtperf::multicore
