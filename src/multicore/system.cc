#include "multicore/system.h"

#include "common/logging.h"

namespace mtperf::multicore {

namespace {
constexpr std::uint32_t kInvalidCore = ~0U;
} // namespace

MulticoreSystem::MulticoreSystem(const uarch::CoreConfig &config,
                                 std::uint32_t num_cores)
    : sharedL2_(config.l2, num_cores)
{
    if (num_cores == 0)
        mtperf_fatal("multicore system needs at least one core");
    cores_.reserve(num_cores);
    for (std::uint32_t i = 0; i < num_cores; ++i)
        cores_.push_back(
            std::make_unique<uarch::Core>(config, &sharedL2_, i));
}

std::uint32_t
MulticoreSystem::nextCore(const std::vector<bool> &runnable) const
{
    std::uint32_t best = kInvalidCore;
    for (std::uint32_t i = 0; i < numCores(); ++i) {
        if (!runnable[i])
            continue;
        if (best == kInvalidCore ||
            cores_[i]->currentCycle() < cores_[best]->currentCycle())
            best = i;
    }
    mtperf_assert(best != kInvalidCore,
                  "nextCore() needs a runnable core");
    return best;
}

uarch::EventCounters
MulticoreSystem::counters(std::uint32_t i) const
{
    uarch::EventCounters merged = cores_[i]->counters();
    const SharedL2Stats &stats = sharedL2_.stats(i);
    merged.l2SharedMisses = stats.l2SharedMisses;
    merged.l2OccupancyEvictedByOther = stats.l2OccupancyEvictedByOther;
    merged.prefetchCancellations = stats.prefetchCancellations;
    return merged;
}

void
MulticoreSystem::reset()
{
    sharedL2_.reset();
    for (auto &core : cores_)
        core->reset();
}

} // namespace mtperf::multicore
