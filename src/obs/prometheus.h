/**
 * @file
 * Prometheus text exposition (format 0.0.4) over the obs registry,
 * plus the minimal parser the `mtperf top` client uses to read a
 * scrape back.
 *
 * Mapping policy (documented in DESIGN.md §15):
 *  - every metric name is prefixed `mtperf_` and has `.`/`-` folded
 *    to `_` (Prometheus names admit only [a-zA-Z0-9_:]);
 *  - counters export as `counter`;
 *  - gauges export as `gauge`, with the watermark as a second gauge
 *    named `<name>_max`;
 *  - histograms export as a `summary`: `quantile="0.5"/"0.95"/"0.99"`
 *    samples plus `_sum` and `_count` (compact, and exactly the
 *    percentile set the registry's JSON dump already publishes).
 *
 * The exposition is generated from one snapshotRegistry() call, so a
 * scrape is as coherent as the registry's relaxed loads allow, and
 * names appear in sorted order so scrapes diff cleanly.
 */

#ifndef MTPERF_OBS_PROMETHEUS_H_
#define MTPERF_OBS_PROMETHEUS_H_

#include <map>
#include <string>

#include "obs/metrics.h"

namespace mtperf::obs {

/** Content-Type header value for the exposition format. */
inline constexpr const char *kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

/** `serve.predict_micros` -> `mtperf_serve_predict_micros`. */
std::string prometheusName(const std::string &metricName);

/** Render @p snapshot in the text exposition format. */
std::string metricsToPrometheus(const MetricsSnapshot &snapshot);

/** Snapshot the registry and render it. */
std::string metricsToPrometheus();

/**
 * One parsed scrape. Samples are keyed by their full sample name:
 * the bare metric name for counters/gauges, `<name>_sum`/`<name>_count`
 * for summary components, and `<name>{quantile="0.99"}` for quantile
 * samples (label text preserved verbatim).
 */
struct PrometheusScrape
{
    std::map<std::string, double> samples;
    //! metric name -> declared TYPE (counter/gauge/summary/...)
    std::map<std::string, std::string> types;

    bool has(const std::string &sample) const;

    /** Value of @p sample; throws FatalError when absent. */
    double value(const std::string &sample) const;

    /** Value of @p sample, or @p fallback when absent. */
    double valueOr(const std::string &sample, double fallback) const;
};

/**
 * Parse text exposition produced by metricsToPrometheus(). Strict
 * about what this module emits (one sample per line, `# TYPE`
 * comments, optional `{quantile="..."}` label); throws FatalError on
 * malformed lines.
 */
PrometheusScrape parsePrometheusText(const std::string &text);

} // namespace mtperf::obs

#endif // MTPERF_OBS_PROMETHEUS_H_
