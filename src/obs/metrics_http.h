/**
 * @file
 * Minimal GET-only HTTP responder exposing the metrics registry in
 * Prometheus text exposition format, plus the tiny HTTP client
 * `mtperf top --http` and the tests use to scrape it back.
 *
 * This is deliberately not a web server: one accept-loop thread, one
 * request per connection (`Connection: close`), bounded request size,
 * three routes' worth of behavior:
 *
 *   GET /metrics  -> 200, text exposition of the whole registry
 *   GET <else>    -> 404
 *   <non-GET>     -> 405
 *
 * It reuses common/socket (same primitives as the serve daemon) and
 * binds its own dedicated listener — scraping never competes with the
 * binary protocol for the serve accept loop. Counters:
 * `obs.metrics_http.requests`, `obs.metrics_http.errors`.
 */

#ifndef MTPERF_OBS_METRICS_HTTP_H_
#define MTPERF_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/socket.h"

namespace mtperf::obs {

/** A scraping server over the process-wide registry. */
class MetricsHttpServer
{
  public:
    struct Options
    {
        std::string host = "127.0.0.1";
        std::uint16_t port = 0; //!< 0 picks an ephemeral port
    };

    /** Binds and listens immediately. @throw FatalError on failure. */
    explicit MetricsHttpServer(Options options);
    ~MetricsHttpServer();

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** Start the accept loop (thread `mtperf-metrics`). */
    void start();

    /** Stop the accept loop and join (idempotent). */
    void stop();

    /** The bound TCP port (useful with ephemeral binding). */
    std::uint16_t port() const { return port_; }

  private:
    void run();
    void handle(net::Socket client);

    Options options_;
    net::Socket listener_;
    std::uint16_t port_ = 0;
    std::thread thread_;
    bool running_ = false;
    std::atomic<bool> stopping_{false};
};

/** Status line + body of one HTTP exchange. */
struct HttpResponse
{
    int status = 0;
    std::string body;
};

/**
 * One-shot HTTP GET (the scraping client). Connects, sends the
 * request, reads to EOF, parses the status line and strips headers.
 * @throw FatalError on connect/transport errors or a malformed reply.
 */
HttpResponse httpGet(const std::string &host, std::uint16_t port,
                     const std::string &path, int timeout_ms = 5000);

} // namespace mtperf::obs

#endif // MTPERF_OBS_METRICS_HTTP_H_
