/**
 * @file
 * Process-wide metrics: named counters, gauges and geometric-bucket
 * histograms behind one registry.
 *
 * The paper's premise is that well-chosen event counters explain a
 * machine's performance; this module applies the same discipline to
 * mtperf itself. Every subsystem (simulator, tree trainer, CV
 * harness, thread pool, serve daemon) publishes its counters here, so
 * the serve STATS reply, the `--metrics-out` end-of-run dump and the
 * bench reports all read one source of truth.
 *
 * Hot-path contract: recording is lock-free (relaxed atomics) and
 * never allocates. Call sites resolve a metric once —
 *
 *     static obs::Counter &rows = obs::counter("serve.rows_predicted");
 *     rows.add(n);
 *
 * — so the name lookup (mutex + map) is paid only on first use.
 * Metrics live for the whole process (the registry never removes
 * one); per-instance views are taken by snapshot deltas, not by
 * per-instance metric objects.
 *
 * Naming convention: dot-separated `component.metric[_unit]`,
 * lowercase, e.g. `sim.sections_simulated`, `tree.leaf_fits`,
 * `pool.task_micros`. Components in use: sim, tree, cv, pool, serve.
 *
 * In the spirit of counter cross-validation (Röhl et al.), the
 * registry also carries named *invariants* — predicates over counter
 * values such as "rows predicted == rows batched" — checked by
 * validateInvariants(); a violation warns loudly instead of letting a
 * miscounted pipeline masquerade as a healthy one.
 */

#ifndef MTPERF_OBS_METRICS_H_
#define MTPERF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mtperf::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void increment() { add(1); }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written instantaneous value (e.g. a queue depth). */
class Gauge
{
  public:
    void
    set(std::int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Highest value ever set()/add()ed to (monotonic watermark). */
    std::int64_t
    maxValue() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    /** add() that also advances the watermark. */
    void
    addTracked(std::int64_t delta)
    {
        const std::int64_t now =
            value_.fetch_add(delta, std::memory_order_relaxed) + delta;
        std::int64_t seen = max_.load(std::memory_order_relaxed);
        while (now > seen &&
               !max_.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
    }

  private:
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> max_{0};
};

/** Bucket layout of a geometric histogram. */
struct HistogramConfig
{
    double firstBound = 1.0; //!< upper bound of bucket 0
    double growth = 1.25;    //!< bound ratio between adjacent buckets
    std::size_t buckets = 96;

    bool
    operator==(const HistogramConfig &o) const
    {
        return firstBound == o.firstBound && growth == o.growth &&
               buckets == o.buckets;
    }
};

class Histogram;

/**
 * A point-in-time copy of a histogram's buckets: mergeable,
 * subtractable (for per-instance deltas of a process-wide histogram)
 * and queryable for interpolated percentiles.
 */
class HistogramSnapshot
{
  public:
    HistogramSnapshot() = default;
    HistogramSnapshot(HistogramConfig config,
                      std::vector<std::uint64_t> buckets,
                      double sum);

    std::uint64_t count() const { return count_; }

    /** Sum of every recorded observation (clamped to bucket range). */
    double sum() const { return sum_; }

    /** Mean observation; 0 when empty. */
    double mean() const;

    /**
     * The @p p quantile (p in [0, 1]) of the recorded observations,
     * linearly interpolated within the containing bucket; 0 when
     * empty. The result is exact to within one bucket's width divided
     * by the bucket's population — far tighter than the bucket upper
     * bound the pre-interpolation implementation returned (which
     * overestimated by up to the full 25% bucket growth).
     */
    double percentile(double p) const;

    /** Accumulate @p other into this snapshot (same config). */
    void merge(const HistogramSnapshot &other);

    /**
     * Subtract @p baseline (an earlier snapshot of the same
     * histogram), yielding the observations recorded in between.
     * A baseline bucket larger than this one clamps to zero (and the
     * sum clamps at 0.0) instead of underflowing: two snapshots of a
     * live histogram are taken bucket-by-bucket without a global
     * lock, so a racing record() can make an "earlier" snapshot
     * appear ahead in one bucket.
     */
    void subtract(const HistogramSnapshot &baseline);

    const HistogramConfig &config() const { return config_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

  private:
    friend class Histogram;

    HistogramConfig config_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/**
 * Lock-free geometric-bucket histogram. record() is O(1): one log,
 * two relaxed atomic adds. Generalized from the serving latency
 * histogram so any subsystem can record durations or sizes.
 */
class Histogram
{
  public:
    explicit Histogram(HistogramConfig config = {});

    /** Record one observation (values <= 0 land in bucket 0). */
    void record(double value);

    std::uint64_t count() const;

    /** Interpolated percentile of everything recorded so far. */
    double percentile(double p) const;

    HistogramSnapshot snapshot() const;

    const HistogramConfig &config() const { return config_; }

    /** Upper bound of @p bucket. */
    double boundOf(std::size_t bucket) const;

    /** The bucket @p value falls in. */
    std::size_t bucketFor(double value) const;

  private:
    HistogramConfig config_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> sumBits_{0}; //!< double bits, CAS-added
};

/**
 * One registered invariant: name, human explanation, and a check that
 * returns an empty string when the invariant holds or a description
 * of the violation.
 */
struct Invariant
{
    std::string name;
    std::function<std::string()> check;
};

/** A violation found by validateInvariants(). */
struct InvariantViolation
{
    std::string name;
    std::string message;
};

/** Resolve (creating on first use) the counter called @p name. */
Counter &counter(const std::string &name);

/** Resolve (creating on first use) the gauge called @p name. */
Gauge &gauge(const std::string &name);

/**
 * Resolve (creating on first use) the histogram called @p name.
 * @p config applies only on creation; a second caller naming the same
 * histogram with a different config gets the existing one.
 */
Histogram &histogram(const std::string &name,
                     HistogramConfig config = {});

/**
 * Register a named cross-counter invariant. Re-registering a name
 * replaces the previous check (so a re-constructed subsystem does not
 * accumulate stale closures).
 */
void registerInvariant(const std::string &name,
                       std::function<std::string()> check);

/**
 * Run every registered invariant, warn (via common/logging) for each
 * violation, and return the violations.
 */
std::vector<InvariantViolation> validateInvariants();

/**
 * Every registered metric rendered as one JSON object:
 *   {"counters":{...},"gauges":{...},"histograms":{name:
 *    {"count":N,"mean":...,"p50":...,"p95":...,"p99":...}},
 *    "invariant_violations":[...]}
 * Keys are emitted in sorted (registration-map) order so dumps diff
 * cleanly.
 */
std::string metricsToJson();

/** Wire format of a metrics dump. */
enum class MetricsFormat
{
    Json,       //!< metricsToJson() object
    Prometheus, //!< text exposition (obs/prometheus.h)
};

/**
 * A coherent point-in-time copy of the whole registry, in sorted name
 * order. This is the enumeration API the time-series sampler and the
 * Prometheus exposition build on; individual values are read with
 * relaxed loads, so the snapshot is per-metric (not globally) atomic.
 */
struct MetricsSnapshot
{
    struct GaugeValue
    {
        std::int64_t value = 0;
        std::int64_t max = 0;
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, GaugeValue>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

MetricsSnapshot snapshotRegistry();

/**
 * Crash-safe (atomic_file) dump of the registry to @p path, running
 * invariant validation first. Fault site: `obs.flush`.
 */
void writeMetricsFile(const std::string &path,
                      MetricsFormat format = MetricsFormat::Json);

} // namespace mtperf::obs

#endif // MTPERF_OBS_METRICS_H_
