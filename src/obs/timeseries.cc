#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/atomic_file.h"
#include "common/checksum.h"
#include "common/fault.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/thread_info.h"

namespace mtperf::obs {

namespace {

constexpr const char *kVersionKey = "mtperf_timeseries";
constexpr std::uint64_t kVersion = 1;
constexpr const char *kCrcPrefix = ",\"crc32\":";

void
appendString(std::ostream &os, const std::string &text)
{
    os << '"' << jsonEscape(text) << '"';
}

void
appendNumber(std::ostream &os, double value)
{
    os << (std::isfinite(value) ? json::jsonNumberText(value) : "0");
}

} // namespace

TimeseriesSpec
parseTimeseriesSpec(const std::string &spec)
{
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        mtperf_fatal("bad --timeseries-out '", spec,
                     "': expected INTERVAL:PATH (e.g. 500ms:ts.json)");
    std::string interval = spec.substr(0, colon);
    std::uint64_t scale = 1;
    if (interval.size() > 2 &&
        interval.compare(interval.size() - 2, 2, "ms") == 0) {
        interval.resize(interval.size() - 2);
    } else if (interval.size() > 1 && interval.back() == 's') {
        interval.pop_back();
        scale = 1000;
    }
    TimeseriesSpec parsed;
    parsed.intervalMs =
        parseSize(interval, "--timeseries-out interval") * scale;
    if (parsed.intervalMs == 0)
        mtperf_fatal("bad --timeseries-out '", spec,
                     "': interval must be positive");
    parsed.path = spec.substr(colon + 1);
    return parsed;
}

TimeseriesSampler::TimeseriesSampler(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()),
      ring_(options.capacity)
{
    mtperf_assert(options_.intervalMs > 0 && options_.capacity > 0,
                  "bad timeseries sampler options");
}

TimeseriesSampler::~TimeseriesSampler()
{
    stop();
}

void
TimeseriesSampler::sampleOnce()
{
    Sample sample;
    sample.tMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - epoch_)
                     .count();
    sample.metrics = snapshotRegistry();

    static Counter &samples = counter("obs.timeseries.samples");
    static Counter &dropped = counter("obs.timeseries.dropped");
    samples.increment();

    std::lock_guard<std::mutex> lock(mutex_);
    if (retained_ == ring_.size())
        dropped.increment();
    else
        ++retained_;
    ring_[head_] = std::move(sample);
    head_ = (head_ + 1) % ring_.size();
    ++taken_;
}

void
TimeseriesSampler::run()
{
    setCurrentThreadName("mtperf-timeseries");
    sampleOnce(); // t=0 baseline
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopping_) {
        wake_.wait_for(lock,
                       std::chrono::milliseconds(options_.intervalMs));
        if (stopping_)
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
TimeseriesSampler::start()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_)
            return;
        running_ = true;
        stopping_ = false;
    }
    thread_ = std::thread([this] { run(); });
}

void
TimeseriesSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!running_)
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    thread_.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        running_ = false;
    }
    sampleOnce(); // end state, so short runs never serialize empty
}

std::uint64_t
TimeseriesSampler::taken() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return taken_;
}

std::size_t
TimeseriesSampler::retained() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return retained_;
}

std::string
TimeseriesSampler::toJson() const
{
    // Copy the ring (oldest first) under the lock, serialize outside.
    std::vector<Sample> samples;
    std::uint64_t taken = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        samples.reserve(retained_);
        const std::size_t oldest =
            (head_ + ring_.size() - retained_) % ring_.size();
        for (std::size_t i = 0; i < retained_; ++i)
            samples.push_back(ring_[(oldest + i) % ring_.size()]);
        taken = taken_;
    }

    std::ostringstream os;
    os << "{\"" << kVersionKey << "\":" << kVersion
       << ",\"interval_ms\":" << options_.intervalMs
       << ",\"capacity\":" << options_.capacity << ",\"taken\":" << taken
       << ",\"dropped\":" << (taken - samples.size()) << ",\"samples\":[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        if (i != 0)
            os << ',';
        os << "{\"t_ms\":" << s.tMs << ",\"counters\":{";
        bool first = true;
        for (const auto &[name, value] : s.metrics.counters) {
            if (!first)
                os << ',';
            first = false;
            appendString(os, name);
            os << ':' << value;
        }
        os << "},\"rates\":{";
        first = true;
        if (i != 0) {
            // Per-second delta vs the previous retained sample. The
            // previous sample's counters are a sorted subset walk:
            // registry maps only grow, so match by name.
            const Sample &prev = samples[i - 1];
            const double dtSec =
                std::max<std::int64_t>(s.tMs - prev.tMs, 1) / 1000.0;
            std::size_t p = 0;
            for (const auto &[name, value] : s.metrics.counters) {
                while (p < prev.metrics.counters.size() &&
                       prev.metrics.counters[p].first < name)
                    ++p;
                const std::uint64_t before =
                    (p < prev.metrics.counters.size() &&
                     prev.metrics.counters[p].first == name)
                        ? prev.metrics.counters[p].second
                        : 0;
                const std::uint64_t delta =
                    value >= before ? value - before : 0;
                if (!first)
                    os << ',';
                first = false;
                appendString(os, name);
                os << ':';
                appendNumber(os, static_cast<double>(delta) / dtSec);
            }
        }
        os << "},\"gauges\":{";
        first = true;
        for (const auto &[name, value] : s.metrics.gauges) {
            if (!first)
                os << ',';
            first = false;
            appendString(os, name);
            os << ":{\"value\":" << value.value
               << ",\"max\":" << value.max << '}';
        }
        os << "},\"histograms\":{";
        first = true;
        for (const auto &[name, snap] : s.metrics.histograms) {
            if (!first)
                os << ',';
            first = false;
            appendString(os, name);
            os << ":{\"count\":" << snap.count() << ",\"sum\":";
            appendNumber(os, snap.sum());
            os << ",\"p50\":";
            appendNumber(os, snap.percentile(0.50));
            os << ",\"p95\":";
            appendNumber(os, snap.percentile(0.95));
            os << ",\"p99\":";
            appendNumber(os, snap.percentile(0.99));
            os << '}';
        }
        os << "}}";
    }
    os << "]";
    std::string body = os.str();
    const std::uint32_t crc = crc32(body);
    body += kCrcPrefix;
    body += std::to_string(crc);
    body += '}';
    return body;
}

void
TimeseriesSampler::writeFile(const std::string &path) const
{
    const std::string json = toJson();
    MTPERF_FAULT_POINT("obs.flush");
    // No trailing newline: the seal covers every byte before the
    // suffix (same contract as the validate drift report).
    atomicWriteFile(path, [&](std::ostream &out) { out << json; });
}

namespace {

[[noreturn]] void
badTimeseries(const std::string &source, const std::string &why)
{
    mtperf_fatal("timeseries ", source, ": ", why);
}

const json::JsonValue &
member(const json::JsonValue &object, const char *key,
       const std::string &source)
{
    const json::JsonValue *value = object.find(key);
    if (value == nullptr)
        badTimeseries(source,
                      std::string("missing member '") + key + "'");
    return *value;
}

std::uint64_t
uintMember(const json::JsonValue &object, const char *key,
           const std::string &source)
{
    const json::JsonValue &value = member(object, key, source);
    if (!value.isNumber() || !value.isUnsignedIntegral())
        badTimeseries(source, std::string("member '") + key +
                                  "' must be an unsigned integer");
    return value.unsignedIntegral();
}

} // namespace

ParsedTimeseries
parseTimeseries(std::string_view text, const std::string &source)
{
    const std::size_t seal = text.rfind(kCrcPrefix);
    if (seal == std::string_view::npos)
        badTimeseries(source, "missing crc32 seal");
    const std::string_view sealed = text.substr(0, seal);

    json::JsonValue root;
    try {
        root = json::parseJson(text, source);
    } catch (const FatalError &e) {
        badTimeseries(source, e.what());
    }
    if (!root.isObject())
        badTimeseries(source, "document must be an object");
    if (uintMember(root, kVersionKey, source) != kVersion)
        badTimeseries(source, "unsupported timeseries version");
    const std::uint64_t declared = uintMember(root, "crc32", source);
    if (declared != crc32(sealed))
        badTimeseries(source, "crc32 seal mismatch (corrupt document)");

    ParsedTimeseries parsed;
    parsed.intervalMs = uintMember(root, "interval_ms", source);
    parsed.capacity = uintMember(root, "capacity", source);
    parsed.taken = uintMember(root, "taken", source);
    parsed.dropped = uintMember(root, "dropped", source);

    const json::JsonValue &samples = member(root, "samples", source);
    if (!samples.isArray())
        badTimeseries(source, "'samples' must be an array");
    if (samples.array().size() > parsed.capacity ||
        samples.array().size() + parsed.dropped != parsed.taken)
        badTimeseries(source, "sample accounting does not add up");

    std::int64_t lastT = -1;
    for (const json::JsonValue &entry : samples.array()) {
        if (!entry.isObject())
            badTimeseries(source, "sample must be an object");
        ParsedTimeseriesSample sample;
        const json::JsonValue &t = member(entry, "t_ms", source);
        if (!t.isNumber())
            badTimeseries(source, "'t_ms' must be a number");
        sample.tMs = static_cast<std::int64_t>(t.number());
        if (sample.tMs < lastT)
            badTimeseries(source, "sample timestamps must be monotone");
        lastT = sample.tMs;

        const json::JsonValue &counters =
            member(entry, "counters", source);
        if (!counters.isObject())
            badTimeseries(source, "'counters' must be an object");
        for (const auto &[name, value] : counters.members()) {
            if (!value.isNumber() || !value.isUnsignedIntegral())
                badTimeseries(source, "counter '" + name +
                                          "' must be an unsigned integer");
            sample.counters[name] = value.unsignedIntegral();
        }
        const json::JsonValue &rates = member(entry, "rates", source);
        if (!rates.isObject())
            badTimeseries(source, "'rates' must be an object");
        for (const auto &[name, value] : rates.members()) {
            if (!value.isNumber())
                badTimeseries(source,
                              "rate '" + name + "' must be a number");
            sample.rates[name] = value.number();
        }
        parsed.samples.push_back(std::move(sample));
    }
    return parsed;
}

} // namespace mtperf::obs
