#include "obs/metrics_http.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/thread_info.h"

namespace mtperf::obs {

namespace {

/** Largest request head we will buffer before giving up. */
constexpr std::size_t kMaxRequestBytes = 8192;

std::string
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Bad Request";
    }
}

void
sendResponse(const net::Socket &client, int status,
             const std::string &contentType, const std::string &body)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       statusText(status) + "\r\n";
    head += "Content-Type: " + contentType + "\r\n";
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    head += "Connection: close\r\n\r\n";
    net::writeAll(client.fd(), head.data(), head.size());
    net::writeAll(client.fd(), body.data(), body.size());
}

/**
 * Read until the blank line ending the request head (we ignore any
 * body; GET has none). @return false when the peer hung up or sent
 * more head than we buffer.
 */
bool
readRequestHead(const net::Socket &client, std::string &head)
{
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos) {
        if (head.size() >= kMaxRequestBytes)
            return false;
        if (!net::waitReadable(client.fd(), 2000))
            return false;
        const ssize_t n = ::read(client.fd(), buf, sizeof buf);
        if (n <= 0)
            return false;
        head.append(buf, static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace

MetricsHttpServer::MetricsHttpServer(Options options)
    : options_(std::move(options))
{
    listener_ = net::listenTcp(options_.host, options_.port, &port_);
}

MetricsHttpServer::~MetricsHttpServer()
{
    stop();
}

void
MetricsHttpServer::start()
{
    if (running_)
        return;
    running_ = true;
    stopping_.store(false);
    thread_ = std::thread([this] { run(); });
}

void
MetricsHttpServer::stop()
{
    if (!running_)
        return;
    stopping_.store(true);
    listener_.shutdownBoth(); // unblock a parked accept immediately
    thread_.join();
    running_ = false;
}

void
MetricsHttpServer::run()
{
    setCurrentThreadName("mtperf-metrics-http");
    static Counter &requests = counter("obs.metrics_http.requests");
    static Counter &errors = counter("obs.metrics_http.errors");
    while (!stopping_.load()) {
        if (!net::waitReadable(listener_.fd(), 100))
            continue;
        if (stopping_.load())
            break;
        try {
            handle(net::acceptOn(listener_));
            requests.increment();
        } catch (const std::exception &e) {
            if (stopping_.load())
                break;
            errors.increment();
            warn("metrics http: ", e.what());
        }
    }
}

void
MetricsHttpServer::handle(net::Socket client)
{
    std::string head;
    if (!readRequestHead(client, head))
        return; // peer gone or oversized head; nothing to answer
    const std::size_t eol = head.find("\r\n");
    const std::vector<std::string> words =
        split(head.substr(0, eol), ' ');
    if (words.size() < 2) {
        sendResponse(client, 400, "text/plain", "bad request\n");
        return;
    }
    if (words[0] != "GET") {
        sendResponse(client, 405, "text/plain",
                     "only GET is supported\n");
        return;
    }
    if (words[1] != "/metrics") {
        sendResponse(client, 404, "text/plain",
                     "try /metrics\n");
        return;
    }
    sendResponse(client, 200, kPrometheusContentType,
                 metricsToPrometheus());
}

HttpResponse
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, int timeout_ms)
{
    net::Endpoint endpoint;
    endpoint.host = host;
    endpoint.port = port;
    const net::Socket sock = net::connectTo(endpoint, timeout_ms);
    const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " +
                                host + "\r\nConnection: close\r\n\r\n";
    net::writeAll(sock.fd(), request.data(), request.size());

    std::string reply;
    char buf[4096];
    while (true) {
        if (!net::waitReadable(sock.fd(), timeout_ms))
            mtperf_fatal("http get ", path, ": response timed out");
        const ssize_t n = ::read(sock.fd(), buf, sizeof buf);
        if (n < 0)
            mtperf_fatal("http get ", path, ": read failed: ",
                         std::strerror(errno));
        if (n == 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }

    // "HTTP/1.1 200 OK\r\n<headers>\r\n\r\n<body>"
    if (!startsWith(reply, "HTTP/1."))
        mtperf_fatal("http get ", path, ": not an HTTP response");
    const std::size_t statusStart = reply.find(' ');
    const std::size_t headEnd = reply.find("\r\n\r\n");
    if (statusStart == std::string::npos ||
        headEnd == std::string::npos)
        mtperf_fatal("http get ", path, ": malformed response head");
    HttpResponse response;
    response.status = static_cast<int>(
        parseSize(reply.substr(statusStart + 1, 3), "http status"));
    response.body = reply.substr(headEnd + 4);
    return response;
}

} // namespace mtperf::obs
