#include "obs/prometheus.h"

#include <cmath>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"

namespace mtperf::obs {

namespace {

void
appendNumber(std::ostream &os, double value)
{
    // Prometheus accepts any float text; reuse the shortest-round-trip
    // encoder so scrapes parse back to identical bits.
    os << (std::isfinite(value) ? json::jsonNumberText(value) : "0");
}

void
appendSummary(std::ostream &os, const std::string &name,
              const HistogramSnapshot &snap)
{
    os << "# TYPE " << name << " summary\n";
    for (const char *q : {"0.5", "0.95", "0.99"}) {
        os << name << "{quantile=\"" << q << "\"} ";
        appendNumber(os, snap.percentile(parseDouble(q, "quantile")));
        os << '\n';
    }
    os << name << "_sum ";
    appendNumber(os, snap.sum());
    os << '\n' << name << "_count " << snap.count() << '\n';
}

} // namespace

std::string
prometheusName(const std::string &metricName)
{
    std::string out = "mtperf_";
    out.reserve(out.size() + metricName.size());
    for (char c : metricName) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
metricsToPrometheus(const MetricsSnapshot &snapshot)
{
    std::ostringstream os;
    for (const auto &[name, value] : snapshot.counters) {
        const std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " counter\n"
           << prom << ' ' << value << '\n';
    }
    for (const auto &[name, value] : snapshot.gauges) {
        const std::string prom = prometheusName(name);
        os << "# TYPE " << prom << " gauge\n"
           << prom << ' ' << value.value << '\n'
           << "# TYPE " << prom << "_max gauge\n"
           << prom << "_max " << value.max << '\n';
    }
    for (const auto &[name, snap] : snapshot.histograms)
        appendSummary(os, prometheusName(name), snap);
    return os.str();
}

std::string
metricsToPrometheus()
{
    return metricsToPrometheus(snapshotRegistry());
}

bool
PrometheusScrape::has(const std::string &sample) const
{
    return samples.count(sample) != 0;
}

double
PrometheusScrape::value(const std::string &sample) const
{
    const auto it = samples.find(sample);
    if (it == samples.end())
        mtperf_fatal("scrape has no sample '", sample, "'");
    return it->second;
}

double
PrometheusScrape::valueOr(const std::string &sample, double fallback) const
{
    const auto it = samples.find(sample);
    return it == samples.end() ? fallback : it->second;
}

PrometheusScrape
parsePrometheusText(const std::string &text)
{
    PrometheusScrape scrape;
    for (const std::string &raw : split(text, '\n')) {
        const std::string line = trim(raw);
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Only `# TYPE <name> <type>` comments are meaningful.
            const std::vector<std::string> words = split(line, ' ');
            if (words.size() == 4 && words[1] == "TYPE")
                scrape.types[words[2]] = words[3];
            continue;
        }
        // `<name>[{labels}] <value>` — the value is everything after
        // the last space so label text may not contain spaces (ours
        // never does).
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            mtperf_fatal("malformed exposition line: ", line);
        const std::string name = trim(line.substr(0, space));
        const std::size_t brace = name.find('{');
        if (brace != std::string::npos &&
            (name.back() != '}' ||
             name.find('"', brace) == std::string::npos))
            mtperf_fatal("malformed exposition labels: ", line);
        scrape.samples[name] =
            parseDouble(trim(line.substr(space + 1)), "exposition value");
    }
    return scrape;
}

} // namespace mtperf::obs
