/**
 * @file
 * Time-series sampler over the metrics registry.
 *
 * The paper's thesis — and CounterPoint's extension of it — is that
 * performance must be watched *over time*, not summarized once at
 * exit. A TimeseriesSampler runs a background thread that snapshots
 * every registered counter, gauge and histogram at a fixed interval
 * into a fixed-capacity ring buffer; when the ring is full the oldest
 * samples are overwritten (the `taken` count keeps growing, so a
 * reader can tell how many fell off the front).
 *
 * Serialization is a canonical, CRC-sealed JSON document (same seal
 * idiom as the validate drift report: the crc32 member covers every
 * byte before its own `,"crc32":` suffix, and no trailing newline
 * means no truncation can masquerade as a complete document):
 *
 *   {"mtperf_timeseries":1,"interval_ms":I,"capacity":C,
 *    "taken":T,"dropped":D,
 *    "samples":[{"t_ms":...,"counters":{...},"rates":{...},
 *                "gauges":{n:{"value":V,"max":M}},
 *                "histograms":{n:{"count":C,"sum":S,
 *                                 "p50":..,"p95":..,"p99":..}}},...],
 *    "crc32":N}
 *
 * `rates` holds per-second counter deltas versus the previous
 * *retained* sample (the first sample has none). Every command takes
 * a `--timeseries-out INTERVAL:PATH` option that runs one sampler for
 * the life of the command and writes the document at exit via
 * atomic_file (fault site: `obs.flush`).
 */

#ifndef MTPERF_OBS_TIMESERIES_H_
#define MTPERF_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mtperf::obs {

/** Parsed `--timeseries-out INTERVAL:PATH` argument. */
struct TimeseriesSpec
{
    std::uint64_t intervalMs = 0;
    std::string path;
};

/**
 * Parse `INTERVAL:PATH` where INTERVAL is a positive integer with an
 * optional `ms` (default) or `s` suffix, e.g. `500ms:ts.json`,
 * `2s:out/ts.json`. @throw FatalError on malformed specs.
 */
TimeseriesSpec parseTimeseriesSpec(const std::string &spec);

/**
 * Background sampler. start() spawns the thread (which samples once
 * immediately, then every interval); stop() joins it and takes one
 * final sample so short runs always record their end state.
 * sampleOnce() is public so tests and the flush path can drive the
 * ring deterministically. Counters: `obs.timeseries.samples`,
 * `obs.timeseries.dropped`.
 */
class TimeseriesSampler
{
  public:
    struct Options
    {
        std::uint64_t intervalMs = 1000;
        std::size_t capacity = 600; //!< ring slots (10 min at 1 Hz)
    };

    explicit TimeseriesSampler(Options options);
    ~TimeseriesSampler();

    TimeseriesSampler(const TimeseriesSampler &) = delete;
    TimeseriesSampler &operator=(const TimeseriesSampler &) = delete;

    void start();
    void stop();

    /** Take one sample now (any thread). */
    void sampleOnce();

    /** Samples ever taken (>= retained()). */
    std::uint64_t taken() const;

    /** Samples currently held in the ring. */
    std::size_t retained() const;

    /** The canonical CRC-sealed document. */
    std::string toJson() const;

    /** Crash-safe dump of toJson(). Fault site: `obs.flush`. */
    void writeFile(const std::string &path) const;

    const Options &options() const { return options_; }

  private:
    struct Sample
    {
        std::int64_t tMs = 0; //!< since sampler construction
        MetricsSnapshot metrics;
    };

    void run();

    const Options options_;
    const std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::vector<Sample> ring_;   //!< ring storage, capacity slots
    std::size_t head_ = 0;       //!< next slot to write
    std::size_t retained_ = 0;
    std::uint64_t taken_ = 0;
    bool stopping_ = false;
    bool running_ = false;
    std::thread thread_;
};

/** One decoded sample of a parsed time-series document. */
struct ParsedTimeseriesSample
{
    std::int64_t tMs = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> rates;
};

/** A parsed + seal-verified time-series document. */
struct ParsedTimeseries
{
    std::uint64_t intervalMs = 0;
    std::uint64_t capacity = 0;
    std::uint64_t taken = 0;
    std::uint64_t dropped = 0;
    std::vector<ParsedTimeseriesSample> samples;
};

/**
 * Parse a document produced by TimeseriesSampler::toJson(),
 * verifying the CRC seal on the raw bytes before trusting any
 * structure and that sample timestamps are monotone.
 * @throw FatalError on corruption or schema violations.
 */
ParsedTimeseries parseTimeseries(std::string_view text,
                                 const std::string &source);

} // namespace mtperf::obs

#endif // MTPERF_OBS_TIMESERIES_H_
