/**
 * @file
 * Accessors for build metadata (version, git sha, compiler, build
 * type) stamped into the binary at configure time. `mtperf version`
 * and the serve INFO reply report these, so a trace or metrics file
 * can always be tied back to the exact build that produced it.
 */

#ifndef MTPERF_OBS_BUILD_INFO_H_
#define MTPERF_OBS_BUILD_INFO_H_

#include <string>

namespace mtperf::obs {

/** Release version (the CMake project version, e.g. "1.0.0"). */
const char *buildVersion();

/** Short git revision at configure time, or "unknown". */
const char *buildGitSha();

/** Compiler id and version that produced the binary. */
const char *buildCompiler();

/** CMake build type (e.g. "RelWithDebInfo"). */
const char *buildType();

/** One-line summary: "mtperf VERSION (SHA, COMPILER, TYPE)". */
std::string buildSummary();

} // namespace mtperf::obs

#endif // MTPERF_OBS_BUILD_INFO_H_
