#include "obs/thread_info.h"

#include <atomic>
#include <map>
#include <mutex>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace mtperf::obs {

namespace {

std::atomic<std::uint32_t> nextThreadId{0};

struct NameTable
{
    std::mutex mutex;
    std::map<std::uint32_t, std::string> names;
};

NameTable &
nameTable()
{
    static NameTable *table = new NameTable; // never destroyed
    return *table;
}

} // namespace

std::uint32_t
currentThreadId()
{
    thread_local const std::uint32_t id =
        nextThreadId.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
setCurrentThreadName(const std::string &name)
{
    NameTable &table = nameTable();
    {
        std::lock_guard<std::mutex> lock(table.mutex);
        table.names[currentThreadId()] = name;
    }
#if defined(__linux__)
    // The kernel caps thread names at 15 chars + NUL.
    pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#endif
}

std::string
currentThreadName()
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    const auto it = table.names.find(currentThreadId());
    return it == table.names.end() ? std::string() : it->second;
}

std::vector<std::pair<std::uint32_t, std::string>>
namedThreads()
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    return {table.names.begin(), table.names.end()};
}

} // namespace mtperf::obs
