#include "obs/thread_info.h"

#include <atomic>
#include <map>
#include <mutex>

#include "common/logging.h"

#if defined(__linux__)
#include <pthread.h>
#endif

namespace mtperf::obs {

namespace {

std::atomic<std::uint32_t> nextThreadId{0};

struct NameTable
{
    std::mutex mutex;
    std::map<std::uint32_t, std::string> names;
};

NameTable &
nameTable()
{
    static NameTable *table = new NameTable; // never destroyed
    return *table;
}

} // namespace

std::uint32_t
currentThreadId()
{
    thread_local const std::uint32_t id =
        nextThreadId.fetch_add(1, std::memory_order_relaxed);
    return id;
}

std::string
kernelThreadName(const std::string &name)
{
    // 15 chars + NUL is the kernel's TASK_COMM_LEN contract.
    constexpr std::size_t kMax = 15;
    if (name.size() <= kMax)
        return name;
    // Keep the head (component) and the tail (instance id): 7 + '~' + 7.
    constexpr std::size_t kTail = (kMax - 1) / 2;
    constexpr std::size_t kHead = kMax - 1 - kTail;
    const std::string clamped =
        name.substr(0, kHead) + "~" + name.substr(name.size() - kTail);
    mtperf_assert(clamped.size() == kMax, "bad kernel name clamp");
    return clamped;
}

void
setCurrentThreadName(const std::string &name)
{
    NameTable &table = nameTable();
    {
        std::lock_guard<std::mutex> lock(table.mutex);
        table.names[currentThreadId()] = name;
    }
#if defined(__linux__)
    const int rc = pthread_setname_np(
        pthread_self(), kernelThreadName(name).c_str());
    mtperf_assert(rc == 0, "pthread_setname_np failed");
#endif
}

std::string
currentThreadName()
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    const auto it = table.names.find(currentThreadId());
    return it == table.names.end() ? std::string() : it->second;
}

std::vector<std::pair<std::uint32_t, std::string>>
namedThreads()
{
    NameTable &table = nameTable();
    std::lock_guard<std::mutex> lock(table.mutex);
    return {table.names.begin(), table.names.end()};
}

} // namespace mtperf::obs
