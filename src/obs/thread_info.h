/**
 * @file
 * Small per-thread identity: a dense numeric id and a human name.
 *
 * The OS thread id is wide, random and useless in a report; every
 * observability consumer (structured logs, trace tracks, TSan/gdb
 * output) wants a small stable number and a name like
 * `mtperf-worker-3`. Threads get an id lazily on first query
 * (the main thread is 0 when it asks first, which it does in
 * practice); setCurrentThreadName() also pushes the name into the
 * kernel via pthread_setname_np where available, so debuggers and
 * sanitizer reports show it too.
 */

#ifndef MTPERF_OBS_THREAD_INFO_H_
#define MTPERF_OBS_THREAD_INFO_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mtperf::obs {

/** Dense process-unique id of the calling thread (0, 1, 2, ...). */
std::uint32_t currentThreadId();

/**
 * Name the calling thread for logs, traces and the OS. The full name
 * is kept for logs/traces; the kernel copy is clamped to the pthread
 * limit via kernelThreadName().
 */
void setCurrentThreadName(const std::string &name);

/**
 * Clamp @p name to the kernel's 15-character thread-name limit.
 * `pthread_setname_np` would otherwise fail with ERANGE on glibc (and
 * a naive substr(0, 15) erases the numeric suffix that distinguishes
 * `mtperf-worker-12` from `mtperf-worker-13`), so long names keep
 * their head and tail around a `~` marker: `mtperf-worker-123` becomes
 * `mtperf-~ker-123`. Names of 15 chars or fewer pass through intact.
 */
std::string kernelThreadName(const std::string &name);

/** The name set for the calling thread ("" if never named). */
std::string currentThreadName();

/** Every (id, name) pair named so far, for trace metadata tracks. */
std::vector<std::pair<std::uint32_t, std::string>> namedThreads();

} // namespace mtperf::obs

#endif // MTPERF_OBS_THREAD_INFO_H_
