#include "obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/atomic_file.h"
#include "common/fault.h"
#include "obs/thread_info.h"

namespace mtperf::obs {

namespace detail {
std::atomic<bool> traceEnabled{false};
} // namespace detail

namespace {

using clock = std::chrono::steady_clock;

/** Session epoch: event timestamps are microseconds since this. */
std::atomic<std::int64_t> epochMicros{0};

std::int64_t
nowMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now().time_since_epoch())
        .count();
}

struct TraceEvent
{
    const char *category;
    std::string name;
    std::int64_t tsMicros;  //!< relative to the session epoch
    std::int64_t durMicros; //!< -1 for instant events
};

/**
 * One thread's event buffer. Owned jointly by the writing thread
 * (via thread_local shared_ptr) and the global session (so events
 * survive thread exit). The per-buffer mutex is effectively
 * uncontended: the owner appends, and collection only runs from
 * traceToJson()/startTrace().
 */
struct ThreadBuffer
{
    std::uint32_t tid;
    std::mutex mutex;
    std::uint64_t session; //!< startTrace() generation at last append
    std::vector<TraceEvent> events;
};

struct TraceState
{
    std::mutex mutex;
    std::uint64_t session = 0; //!< bumped by every startTrace()
    std::string processLabel = "mtperf";
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceState &
state()
{
    static TraceState *instance = new TraceState; // never destroyed
    return *instance;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        fresh->tid = currentThreadId();
        TraceState &st = state();
        std::lock_guard<std::mutex> lock(st.mutex);
        fresh->session = st.session;
        st.buffers.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void
appendEvent(TraceEvent event)
{
    ThreadBuffer &buffer = threadBuffer();
    const std::uint64_t session = [] {
        TraceState &st = state();
        std::lock_guard<std::mutex> lock(st.mutex);
        return st.session;
    }();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    if (buffer.session != session) {
        // First append since a startTrace(): drop the stale session's
        // events lazily, so startTrace() needn't visit every buffer.
        buffer.events.clear();
        buffer.session = session;
    }
    buffer.events.push_back(std::move(event));
}

void
appendJsonEscaped(std::ostream &os, const std::string &text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
}

} // namespace

void
startTrace()
{
    TraceState &st = state();
    {
        std::lock_guard<std::mutex> lock(st.mutex);
        ++st.session;
    }
    epochMicros.store(nowMicros(), std::memory_order_relaxed);
    detail::traceEnabled.store(true, std::memory_order_relaxed);
}

void
stopTrace()
{
    detail::traceEnabled.store(false, std::memory_order_relaxed);
}

void
traceInstant(const char *category, std::string name)
{
    if (!traceEnabled())
        return;
    appendEvent({category, std::move(name),
                 nowMicros() -
                     epochMicros.load(std::memory_order_relaxed),
                 -1});
}

std::int64_t
traceNowMicros()
{
    return nowMicros();
}

void
traceCompleteSpan(const char *category, std::string name,
                  std::int64_t startMicros, std::int64_t endMicros)
{
    if (!traceEnabled())
        return;
    const std::int64_t epoch =
        epochMicros.load(std::memory_order_relaxed);
    appendEvent({category, std::move(name), startMicros - epoch,
                 std::max<std::int64_t>(endMicros - startMicros, 0)});
}

void
setTraceProcessLabel(std::string label)
{
    TraceState &st = state();
    std::lock_guard<std::mutex> lock(st.mutex);
    st.processLabel = std::move(label);
}

std::string
traceIdHex(std::uint64_t traceId)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(traceId));
    return buf;
}

std::string
traceToJson()
{
    // Snapshot the buffer list, then drain each buffer under its own
    // lock. In-flight spans (not yet destroyed) are simply absent.
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    std::uint64_t session = 0;
    std::string processLabel;
    {
        TraceState &st = state();
        std::lock_guard<std::mutex> lock(st.mutex);
        buffers = st.buffers;
        session = st.session;
        processLabel = st.processLabel;
    }

    // The real pid keeps tids from colliding when a client trace and
    // a server trace are concatenated into one merged document.
    const long pid = static_cast<long>(::getpid());
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    appendJsonEscaped(os, processLabel);
    os << "\"}}";
    bool first = false;
    for (const auto &[tid, name] : namedThreads()) {
        os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
        appendJsonEscaped(os, name);
        os << "\"}}";
    }
    for (const auto &buffer : buffers) {
        std::lock_guard<std::mutex> lock(buffer->mutex);
        if (buffer->session != session)
            continue; // events predate the current session
        for (const TraceEvent &event : buffer->events) {
            if (!first)
                os << ',';
            first = false;
            os << "{\"name\":\"";
            appendJsonEscaped(os, event.name);
            os << "\",\"cat\":\"" << event.category
               << "\",\"ph\":\"" << (event.durMicros < 0 ? 'i' : 'X')
               << "\",\"ts\":" << event.tsMicros;
            if (event.durMicros >= 0)
                os << ",\"dur\":" << event.durMicros;
            else
                os << ",\"s\":\"t\"";
            os << ",\"pid\":" << pid << ",\"tid\":" << buffer->tid
               << '}';
        }
    }
    os << "]}";
    return os.str();
}

void
writeTraceFile(const std::string &path)
{
    stopTrace();
    const std::string json = traceToJson();
    MTPERF_FAULT_POINT("obs.flush");
    atomicWriteFile(path, [&](std::ostream &out) { out << json << "\n"; });
}

ScopedSpan::ScopedSpan(const char *category, std::string name)
{
    if (!traceEnabled())
        return;
    armed_ = true;
    category_ = category;
    name_ = std::move(name);
    startMicros_ = nowMicros();
}

ScopedSpan::ScopedSpan(const char *category, const char *name)
{
    if (!traceEnabled())
        return;
    armed_ = true;
    category_ = category;
    name_ = name;
    startMicros_ = nowMicros();
}

ScopedSpan::~ScopedSpan()
{
    if (!armed_)
        return;
    const std::int64_t end = nowMicros();
    const std::int64_t epoch =
        epochMicros.load(std::memory_order_relaxed);
    // Record even if tracing stopped mid-span: the buffer's session
    // check on the next startTrace() discards anything stale.
    appendEvent({category_, std::move(name_), startMicros_ - epoch,
                 end - startMicros_});
}

} // namespace mtperf::obs
