/**
 * @file
 * Scoped-span tracing with Chrome trace-event JSON output.
 *
 * Any `mtperf <cmd> --trace-out FILE` run records wall-clock spans
 * from the instrumented pipeline stages (simulate/collect, tree
 * grow/fit/prune, CV folds, serve batches) and writes a file loadable
 * by Perfetto (https://ui.perfetto.dev) or chrome://tracing, with one
 * track per thread (named via obs/thread_info).
 *
 * Cost model: when tracing is disabled — the default — a ScopedSpan
 * is one relaxed atomic load in the constructor and one in the
 * destructor; no clock reads, no allocation. When enabled, each span
 * costs two steady_clock reads and one small-vector append into a
 * thread-local buffer (amortized, no locks on the hot path; the
 * buffer's mutex is only contended during final collection).
 *
 * Spans nest naturally (Chrome's "X" complete events stack by
 * begin/end times), so instrumenting a phase that calls an
 * instrumented sub-phase just works.
 */

#ifndef MTPERF_OBS_TRACE_H_
#define MTPERF_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace mtperf::obs {

namespace detail {
extern std::atomic<bool> traceEnabled;
} // namespace detail

/** True while a trace session is recording. */
inline bool
traceEnabled()
{
    return detail::traceEnabled.load(std::memory_order_relaxed);
}

/**
 * Begin a trace session: clear previously buffered events, set the
 * session epoch (timestamps are microseconds from here) and enable
 * recording.
 */
void startTrace();

/** Stop recording; buffered events stay readable. */
void stopTrace();

/**
 * Record an instant event (a vertical marker in the viewer), e.g. a
 * checkpoint write. No-op when tracing is disabled.
 */
void traceInstant(const char *category, std::string name);

/**
 * Absolute steady-clock microseconds, for callers that measure a
 * span themselves (e.g. the batcher timing a job's queue wait from
 * enqueue on one thread to drain on another). Pair with
 * traceCompleteSpan(); the session epoch is subtracted there.
 */
std::int64_t traceNowMicros();

/**
 * Record a caller-measured complete span on the calling thread's
 * track. @p startMicros / @p endMicros are traceNowMicros() values;
 * negative durations clamp to zero. No-op when tracing is disabled.
 */
void traceCompleteSpan(const char *category, std::string name,
                       std::int64_t startMicros,
                       std::int64_t endMicros);

/**
 * Label this process's track group in the viewer ("mtperf serve",
 * "mtperf predict"). Events always carry the real pid, so traces
 * from a client and a server process merge without tid collisions;
 * the label tells the two apart.
 */
void setTraceProcessLabel(std::string label);

/** `1f3a...` — the canonical 16-digit hex spelling of a trace id,
 * used in span names (`client.predict trace=<hex>`) so one request's
 * client→server chain greps out of a merged trace. */
std::string traceIdHex(std::uint64_t traceId);

/**
 * Everything recorded so far as Chrome trace-event JSON:
 * {"traceEvents":[...]} with "X" (complete) span events, "i" instant
 * events and "M" thread-name metadata, one tid per mtperf thread.
 */
std::string traceToJson();

/**
 * Stop the session and write traceToJson() crash-safely
 * (atomic_file). Fault site: `obs.flush`.
 */
void writeTraceFile(const std::string &path);

/**
 * RAII span: records [construction, destruction) on the calling
 * thread's track. The name may carry runtime detail ("sim.workload
 * mcf-like"); the category groups spans for viewer filtering ("sim",
 * "tree", "cv", "serve", "pool").
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *category, std::string name);

    /** Literal-only overload that skips the string when disabled. */
    ScopedSpan(const char *category, const char *name);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    bool armed_ = false;
    const char *category_ = nullptr;
    std::string name_;
    std::int64_t startMicros_ = 0;
};

} // namespace mtperf::obs

#endif // MTPERF_OBS_TRACE_H_
