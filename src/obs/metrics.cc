#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/atomic_file.h"
#include "common/fault.h"
#include "common/logging.h"
#include "obs/prometheus.h"

namespace mtperf::obs {

// ---------------------------------------------------------------------------
// Histogram

HistogramSnapshot::HistogramSnapshot(HistogramConfig config,
                                     std::vector<std::uint64_t> buckets,
                                     double sum)
    : config_(config), buckets_(std::move(buckets)), sum_(sum)
{
    for (std::uint64_t b : buckets_)
        count_ += b;
}

double
HistogramSnapshot::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(count_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        const std::uint64_t here = buckets_[b];
        if (here == 0)
            continue;
        if (static_cast<double>(seen + here) >= target) {
            // Interpolate within the bucket: the target rank falls
            // `within` of the way through this bucket's population,
            // spread linearly over [lower bound, upper bound].
            const double lower =
                b == 0 ? 0.0
                       : config_.firstBound *
                             std::pow(config_.growth,
                                      static_cast<double>(b) - 1.0);
            const double upper =
                config_.firstBound *
                std::pow(config_.growth, static_cast<double>(b));
            const double within =
                (target - static_cast<double>(seen)) /
                static_cast<double>(here);
            return lower + within * (upper - lower);
        }
        seen += here;
    }
    return config_.firstBound *
           std::pow(config_.growth,
                    static_cast<double>(buckets_.size()) - 1.0);
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (buckets_.empty()) {
        *this = other;
        return;
    }
    mtperf_assert(config_ == other.config_,
                  "merging histograms with different bucket layouts");
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        buckets_[b] += other.buckets_[b];
    count_ += other.count_;
    sum_ += other.sum_;
}

void
HistogramSnapshot::subtract(const HistogramSnapshot &baseline)
{
    if (baseline.buckets_.empty())
        return;
    mtperf_assert(config_ == baseline.config_,
                  "subtracting histograms with different bucket layouts");
    count_ = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        // Clamp instead of asserting: a record() racing the two
        // bucket copies can leave the "earlier" snapshot ahead in
        // exactly the bucket it was incrementing.
        buckets_[b] = buckets_[b] >= baseline.buckets_[b]
                          ? buckets_[b] - baseline.buckets_[b]
                          : 0;
        count_ += buckets_[b];
    }
    sum_ = std::max(sum_ - baseline.sum_, 0.0);
}

Histogram::Histogram(HistogramConfig config)
    : config_(config), buckets_(config.buckets)
{
    mtperf_assert(config_.buckets > 0 && config_.growth > 1.0 &&
                      config_.firstBound > 0.0,
                  "bad histogram config");
}

std::size_t
Histogram::bucketFor(double value) const
{
    if (!(value > config_.firstBound))
        return 0;
    const double steps = std::log(value / config_.firstBound) /
                         std::log(config_.growth);
    const auto bucket = static_cast<std::size_t>(std::ceil(steps));
    return bucket >= config_.buckets ? config_.buckets - 1 : bucket;
}

double
Histogram::boundOf(std::size_t bucket) const
{
    return config_.firstBound *
           std::pow(config_.growth, static_cast<double>(bucket));
}

void
Histogram::record(double value)
{
    buckets_[bucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    // CAS-loop add of the double sum; contention is rare (the loop
    // retries only when two records race on the same histogram).
    std::uint64_t bits = sumBits_.load(std::memory_order_relaxed);
    while (true) {
        const double updated =
            std::bit_cast<double>(bits) + std::max(value, 0.0);
        if (sumBits_.compare_exchange_weak(
                bits, std::bit_cast<std::uint64_t>(updated),
                std::memory_order_relaxed)) {
            break;
        }
    }
}

std::uint64_t
Histogram::count() const
{
    std::uint64_t total = 0;
    for (const auto &bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

double
Histogram::percentile(double p) const
{
    return snapshot().percentile(p);
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::vector<std::uint64_t> copied(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b)
        copied[b] = buckets_[b].load(std::memory_order_relaxed);
    return HistogramSnapshot(
        config_, std::move(copied),
        std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed)));
}

// ---------------------------------------------------------------------------
// Registry

namespace {

/**
 * Metric storage. unique_ptr-per-metric keeps references stable
 * forever (the maps only grow), which is what lets call sites cache
 * `static Counter &` across the process lifetime.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
    std::map<std::string, Invariant> invariants;
};

Registry &
registry()
{
    static Registry *instance = new Registry; // never destroyed
    return *instance;
}

void
appendJsonNumber(std::ostream &os, double value)
{
    if (!std::isfinite(value)) {
        os << "0";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << value;
    os << tmp.str();
}

/** Minimal JSON string escaping (quotes, backslash, control chars). */
void
appendJsonString(std::ostream &os, const std::string &text)
{
    os << '"';
    for (char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

Counter &
counter(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name, HistogramConfig config)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto &slot = reg.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>(config);
    return *slot;
}

void
registerInvariant(const std::string &name,
                  std::function<std::string()> check)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.invariants[name] = Invariant{name, std::move(check)};
}

std::vector<InvariantViolation>
validateInvariants()
{
    // Copy the checks out so user callbacks run without the registry
    // lock (they will re-enter counter()/gauge()).
    std::vector<Invariant> checks;
    {
        Registry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        checks.reserve(reg.invariants.size());
        for (const auto &[name, invariant] : reg.invariants)
            checks.push_back(invariant);
    }
    std::vector<InvariantViolation> violations;
    for (const auto &invariant : checks) {
        const std::string message = invariant.check();
        if (message.empty())
            continue;
        warn("metrics invariant '", invariant.name,
             "' violated: ", message);
        violations.push_back({invariant.name, message});
    }
    return violations;
}

MetricsSnapshot
snapshotRegistry()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    MetricsSnapshot snap;
    snap.counters.reserve(reg.counters.size());
    for (const auto &[name, metric] : reg.counters)
        snap.counters.emplace_back(name, metric->value());
    snap.gauges.reserve(reg.gauges.size());
    for (const auto &[name, metric] : reg.gauges)
        snap.gauges.emplace_back(
            name,
            MetricsSnapshot::GaugeValue{metric->value(),
                                        metric->maxValue()});
    snap.histograms.reserve(reg.histograms.size());
    for (const auto &[name, metric] : reg.histograms)
        snap.histograms.emplace_back(name, metric->snapshot());
    return snap;
}

std::string
metricsToJson()
{
    const std::vector<InvariantViolation> violations =
        validateInvariants();

    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, metric] : reg.counters) {
        if (!first)
            os << ',';
        first = false;
        appendJsonString(os, name);
        os << ':' << metric->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, metric] : reg.gauges) {
        if (!first)
            os << ',';
        first = false;
        appendJsonString(os, name);
        os << ":{\"value\":" << metric->value()
           << ",\"max\":" << metric->maxValue() << '}';
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, metric] : reg.histograms) {
        if (!first)
            os << ',';
        first = false;
        const HistogramSnapshot snap = metric->snapshot();
        appendJsonString(os, name);
        os << ":{\"count\":" << snap.count() << ",\"mean\":";
        appendJsonNumber(os, snap.mean());
        os << ",\"p50\":";
        appendJsonNumber(os, snap.percentile(0.50));
        os << ",\"p95\":";
        appendJsonNumber(os, snap.percentile(0.95));
        os << ",\"p99\":";
        appendJsonNumber(os, snap.percentile(0.99));
        os << '}';
    }
    os << "},\"invariant_violations\":[";
    first = true;
    for (const auto &violation : violations) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"name\":";
        appendJsonString(os, violation.name);
        os << ",\"message\":";
        appendJsonString(os, violation.message);
        os << '}';
    }
    os << "]}";
    return os.str();
}

void
writeMetricsFile(const std::string &path, MetricsFormat format)
{
    // Both formats run invariant validation first: the JSON dump
    // embeds the violations, the Prometheus one warns via logging.
    const std::string body = format == MetricsFormat::Json
                                 ? metricsToJson()
                                 : (static_cast<void>(validateInvariants()),
                                    metricsToPrometheus());
    MTPERF_FAULT_POINT("obs.flush");
    atomicWriteFile(path, [&](std::ostream &out) {
        out << body;
        if (format == MetricsFormat::Json)
            out << "\n"; // exposition text is already \n-terminated
    });
}

} // namespace mtperf::obs
