#include "obs/build_info.h"

#include "obs/build_info_generated.h"

namespace mtperf::obs {

const char *
buildVersion()
{
    return MTPERF_BUILD_VERSION;
}

const char *
buildGitSha()
{
    return MTPERF_BUILD_GIT_SHA;
}

const char *
buildCompiler()
{
    return MTPERF_BUILD_COMPILER;
}

const char *
buildType()
{
    return MTPERF_BUILD_TYPE;
}

std::string
buildSummary()
{
    std::string out = "mtperf ";
    out += MTPERF_BUILD_VERSION;
    out += " (";
    out += MTPERF_BUILD_GIT_SHA;
    out += ", ";
    out += MTPERF_BUILD_COMPILER;
    out += ", ";
    out += MTPERF_BUILD_TYPE;
    out += ")";
    return out;
}

} // namespace mtperf::obs
