# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_data[1]_include.cmake")
include("/root/repo/build/tests/tests_ml[1]_include.cmake")
include("/root/repo/build/tests/tests_uarch[1]_include.cmake")
include("/root/repo/build/tests/tests_workload[1]_include.cmake")
include("/root/repo/build/tests/tests_cli[1]_include.cmake")
include("/root/repo/build/tests/tests_perf[1]_include.cmake")
