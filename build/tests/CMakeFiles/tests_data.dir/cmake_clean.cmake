file(REMOVE_RECURSE
  "CMakeFiles/tests_data.dir/test_data_io.cc.o"
  "CMakeFiles/tests_data.dir/test_data_io.cc.o.d"
  "CMakeFiles/tests_data.dir/test_dataset.cc.o"
  "CMakeFiles/tests_data.dir/test_dataset.cc.o.d"
  "CMakeFiles/tests_data.dir/test_folds.cc.o"
  "CMakeFiles/tests_data.dir/test_folds.cc.o.d"
  "CMakeFiles/tests_data.dir/test_transform.cc.o"
  "CMakeFiles/tests_data.dir/test_transform.cc.o.d"
  "tests_data"
  "tests_data.pdb"
  "tests_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
