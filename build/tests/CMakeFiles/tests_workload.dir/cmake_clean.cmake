file(REMOVE_RECURSE
  "CMakeFiles/tests_workload.dir/test_phase.cc.o"
  "CMakeFiles/tests_workload.dir/test_phase.cc.o.d"
  "CMakeFiles/tests_workload.dir/test_runner.cc.o"
  "CMakeFiles/tests_workload.dir/test_runner.cc.o.d"
  "CMakeFiles/tests_workload.dir/test_spec_suite.cc.o"
  "CMakeFiles/tests_workload.dir/test_spec_suite.cc.o.d"
  "CMakeFiles/tests_workload.dir/test_stream_gen.cc.o"
  "CMakeFiles/tests_workload.dir/test_stream_gen.cc.o.d"
  "CMakeFiles/tests_workload.dir/test_trace.cc.o"
  "CMakeFiles/tests_workload.dir/test_trace.cc.o.d"
  "tests_workload"
  "tests_workload.pdb"
  "tests_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
