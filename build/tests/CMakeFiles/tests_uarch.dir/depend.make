# Empty dependencies file for tests_uarch.
# This may be replaced when dependencies are built.
