file(REMOVE_RECURSE
  "CMakeFiles/tests_uarch.dir/test_branch_predictor.cc.o"
  "CMakeFiles/tests_uarch.dir/test_branch_predictor.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_cache.cc.o"
  "CMakeFiles/tests_uarch.dir/test_cache.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_core.cc.o"
  "CMakeFiles/tests_uarch.dir/test_core.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_core_ports.cc.o"
  "CMakeFiles/tests_uarch.dir/test_core_ports.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_cpi_stack.cc.o"
  "CMakeFiles/tests_uarch.dir/test_cpi_stack.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_decoder.cc.o"
  "CMakeFiles/tests_uarch.dir/test_decoder.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_event_counters.cc.o"
  "CMakeFiles/tests_uarch.dir/test_event_counters.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_lsq.cc.o"
  "CMakeFiles/tests_uarch.dir/test_lsq.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_tlb.cc.o"
  "CMakeFiles/tests_uarch.dir/test_tlb.cc.o.d"
  "CMakeFiles/tests_uarch.dir/test_uarch_properties.cc.o"
  "CMakeFiles/tests_uarch.dir/test_uarch_properties.cc.o.d"
  "tests_uarch"
  "tests_uarch.pdb"
  "tests_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
