
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/tests_uarch.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/tests_uarch.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/tests_uarch.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_core.cc.o.d"
  "/root/repo/tests/test_core_ports.cc" "tests/CMakeFiles/tests_uarch.dir/test_core_ports.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_core_ports.cc.o.d"
  "/root/repo/tests/test_cpi_stack.cc" "tests/CMakeFiles/tests_uarch.dir/test_cpi_stack.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_cpi_stack.cc.o.d"
  "/root/repo/tests/test_decoder.cc" "tests/CMakeFiles/tests_uarch.dir/test_decoder.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_decoder.cc.o.d"
  "/root/repo/tests/test_event_counters.cc" "tests/CMakeFiles/tests_uarch.dir/test_event_counters.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_event_counters.cc.o.d"
  "/root/repo/tests/test_lsq.cc" "tests/CMakeFiles/tests_uarch.dir/test_lsq.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_lsq.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/tests_uarch.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_uarch_properties.cc" "tests/CMakeFiles/tests_uarch.dir/test_uarch_properties.cc.o" "gcc" "tests/CMakeFiles/tests_uarch.dir/test_uarch_properties.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
