file(REMOVE_RECURSE
  "CMakeFiles/tests_perf.dir/test_analyzer.cc.o"
  "CMakeFiles/tests_perf.dir/test_analyzer.cc.o.d"
  "CMakeFiles/tests_perf.dir/test_diff.cc.o"
  "CMakeFiles/tests_perf.dir/test_diff.cc.o.d"
  "CMakeFiles/tests_perf.dir/test_first_order_model.cc.o"
  "CMakeFiles/tests_perf.dir/test_first_order_model.cc.o.d"
  "CMakeFiles/tests_perf.dir/test_integration.cc.o"
  "CMakeFiles/tests_perf.dir/test_integration.cc.o.d"
  "CMakeFiles/tests_perf.dir/test_json_report.cc.o"
  "CMakeFiles/tests_perf.dir/test_json_report.cc.o.d"
  "CMakeFiles/tests_perf.dir/test_section_collector.cc.o"
  "CMakeFiles/tests_perf.dir/test_section_collector.cc.o.d"
  "tests_perf"
  "tests_perf.pdb"
  "tests_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
