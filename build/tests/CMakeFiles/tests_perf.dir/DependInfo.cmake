
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyzer.cc" "tests/CMakeFiles/tests_perf.dir/test_analyzer.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_analyzer.cc.o.d"
  "/root/repo/tests/test_diff.cc" "tests/CMakeFiles/tests_perf.dir/test_diff.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_diff.cc.o.d"
  "/root/repo/tests/test_first_order_model.cc" "tests/CMakeFiles/tests_perf.dir/test_first_order_model.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_first_order_model.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/tests_perf.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_json_report.cc" "tests/CMakeFiles/tests_perf.dir/test_json_report.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_json_report.cc.o.d"
  "/root/repo/tests/test_section_collector.cc" "tests/CMakeFiles/tests_perf.dir/test_section_collector.cc.o" "gcc" "tests/CMakeFiles/tests_perf.dir/test_section_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
