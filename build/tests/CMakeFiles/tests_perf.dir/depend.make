# Empty dependencies file for tests_perf.
# This may be replaced when dependencies are built.
