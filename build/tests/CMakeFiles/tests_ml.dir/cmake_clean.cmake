file(REMOVE_RECURSE
  "CMakeFiles/tests_ml.dir/test_bagged_m5.cc.o"
  "CMakeFiles/tests_ml.dir/test_bagged_m5.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_cross_validation.cc.o"
  "CMakeFiles/tests_ml.dir/test_cross_validation.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_knn.cc.o"
  "CMakeFiles/tests_ml.dir/test_knn.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_linear_model.cc.o"
  "CMakeFiles/tests_ml.dir/test_linear_model.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_m5prime.cc.o"
  "CMakeFiles/tests_ml.dir/test_m5prime.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_m5prime_io.cc.o"
  "CMakeFiles/tests_ml.dir/test_m5prime_io.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_m5prime_options.cc.o"
  "CMakeFiles/tests_ml.dir/test_m5prime_options.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_m5rules.cc.o"
  "CMakeFiles/tests_ml.dir/test_m5rules.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_metrics.cc.o"
  "CMakeFiles/tests_ml.dir/test_metrics.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_mlp.cc.o"
  "CMakeFiles/tests_ml.dir/test_mlp.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_regression_tree.cc.o"
  "CMakeFiles/tests_ml.dir/test_regression_tree.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_regressor_properties.cc.o"
  "CMakeFiles/tests_ml.dir/test_regressor_properties.cc.o.d"
  "CMakeFiles/tests_ml.dir/test_svr.cc.o"
  "CMakeFiles/tests_ml.dir/test_svr.cc.o.d"
  "tests_ml"
  "tests_ml.pdb"
  "tests_ml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
