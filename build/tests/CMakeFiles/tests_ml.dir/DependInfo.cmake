
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bagged_m5.cc" "tests/CMakeFiles/tests_ml.dir/test_bagged_m5.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_bagged_m5.cc.o.d"
  "/root/repo/tests/test_cross_validation.cc" "tests/CMakeFiles/tests_ml.dir/test_cross_validation.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_cross_validation.cc.o.d"
  "/root/repo/tests/test_knn.cc" "tests/CMakeFiles/tests_ml.dir/test_knn.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_knn.cc.o.d"
  "/root/repo/tests/test_linear_model.cc" "tests/CMakeFiles/tests_ml.dir/test_linear_model.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_linear_model.cc.o.d"
  "/root/repo/tests/test_m5prime.cc" "tests/CMakeFiles/tests_ml.dir/test_m5prime.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_m5prime.cc.o.d"
  "/root/repo/tests/test_m5prime_io.cc" "tests/CMakeFiles/tests_ml.dir/test_m5prime_io.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_m5prime_io.cc.o.d"
  "/root/repo/tests/test_m5prime_options.cc" "tests/CMakeFiles/tests_ml.dir/test_m5prime_options.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_m5prime_options.cc.o.d"
  "/root/repo/tests/test_m5rules.cc" "tests/CMakeFiles/tests_ml.dir/test_m5rules.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_m5rules.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/tests_ml.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_mlp.cc" "tests/CMakeFiles/tests_ml.dir/test_mlp.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_mlp.cc.o.d"
  "/root/repo/tests/test_regression_tree.cc" "tests/CMakeFiles/tests_ml.dir/test_regression_tree.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_regression_tree.cc.o.d"
  "/root/repo/tests/test_regressor_properties.cc" "tests/CMakeFiles/tests_ml.dir/test_regressor_properties.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_regressor_properties.cc.o.d"
  "/root/repo/tests/test_svr.cc" "tests/CMakeFiles/tests_ml.dir/test_svr.cc.o" "gcc" "tests/CMakeFiles/tests_ml.dir/test_svr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
