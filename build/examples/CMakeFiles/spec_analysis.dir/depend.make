# Empty dependencies file for spec_analysis.
# This may be replaced when dependencies are built.
