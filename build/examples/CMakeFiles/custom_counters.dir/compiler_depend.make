# Empty compiler generated dependencies file for custom_counters.
# This may be replaced when dependencies are built.
