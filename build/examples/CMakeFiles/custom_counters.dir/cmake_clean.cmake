file(REMOVE_RECURSE
  "CMakeFiles/custom_counters.dir/custom_counters.cpp.o"
  "CMakeFiles/custom_counters.dir/custom_counters.cpp.o.d"
  "custom_counters"
  "custom_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
