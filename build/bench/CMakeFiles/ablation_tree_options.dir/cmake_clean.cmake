file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_options.dir/ablation_tree_options.cc.o"
  "CMakeFiles/ablation_tree_options.dir/ablation_tree_options.cc.o.d"
  "ablation_tree_options"
  "ablation_tree_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
