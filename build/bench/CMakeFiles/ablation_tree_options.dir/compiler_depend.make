# Empty compiler generated dependencies file for ablation_tree_options.
# This may be replaced when dependencies are built.
