file(REMOVE_RECURSE
  "CMakeFiles/fig2_tree.dir/fig2_tree.cc.o"
  "CMakeFiles/fig2_tree.dir/fig2_tree.cc.o.d"
  "fig2_tree"
  "fig2_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
