# Empty compiler generated dependencies file for lowo_validation.
# This may be replaced when dependencies are built.
