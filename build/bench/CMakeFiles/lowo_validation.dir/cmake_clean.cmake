file(REMOVE_RECURSE
  "CMakeFiles/lowo_validation.dir/lowo_validation.cc.o"
  "CMakeFiles/lowo_validation.dir/lowo_validation.cc.o.d"
  "lowo_validation"
  "lowo_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowo_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
