file(REMOVE_RECURSE
  "CMakeFiles/ablation_min_instances.dir/ablation_min_instances.cc.o"
  "CMakeFiles/ablation_min_instances.dir/ablation_min_instances.cc.o.d"
  "ablation_min_instances"
  "ablation_min_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_min_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
