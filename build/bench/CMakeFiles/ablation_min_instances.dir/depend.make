# Empty dependencies file for ablation_min_instances.
# This may be replaced when dependencies are built.
