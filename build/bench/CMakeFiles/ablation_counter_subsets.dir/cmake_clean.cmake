file(REMOVE_RECURSE
  "CMakeFiles/ablation_counter_subsets.dir/ablation_counter_subsets.cc.o"
  "CMakeFiles/ablation_counter_subsets.dir/ablation_counter_subsets.cc.o.d"
  "ablation_counter_subsets"
  "ablation_counter_subsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counter_subsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
