# Empty compiler generated dependencies file for ablation_counter_subsets.
# This may be replaced when dependencies are built.
