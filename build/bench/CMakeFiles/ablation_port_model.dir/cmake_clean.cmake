file(REMOVE_RECURSE
  "CMakeFiles/ablation_port_model.dir/ablation_port_model.cc.o"
  "CMakeFiles/ablation_port_model.dir/ablation_port_model.cc.o.d"
  "ablation_port_model"
  "ablation_port_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_port_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
