# Empty dependencies file for ablation_port_model.
# This may be replaced when dependencies are built.
