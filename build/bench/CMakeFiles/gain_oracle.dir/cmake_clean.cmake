file(REMOVE_RECURSE
  "CMakeFiles/gain_oracle.dir/gain_oracle.cc.o"
  "CMakeFiles/gain_oracle.dir/gain_oracle.cc.o.d"
  "gain_oracle"
  "gain_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
