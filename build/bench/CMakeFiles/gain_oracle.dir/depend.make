# Empty dependencies file for gain_oracle.
# This may be replaced when dependencies are built.
