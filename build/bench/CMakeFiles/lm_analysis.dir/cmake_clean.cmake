file(REMOVE_RECURSE
  "CMakeFiles/lm_analysis.dir/lm_analysis.cc.o"
  "CMakeFiles/lm_analysis.dir/lm_analysis.cc.o.d"
  "lm_analysis"
  "lm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
