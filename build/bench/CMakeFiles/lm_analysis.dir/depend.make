# Empty dependencies file for lm_analysis.
# This may be replaced when dependencies are built.
