file(REMOVE_RECURSE
  "CMakeFiles/split_impact.dir/split_impact.cc.o"
  "CMakeFiles/split_impact.dir/split_impact.cc.o.d"
  "split_impact"
  "split_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
