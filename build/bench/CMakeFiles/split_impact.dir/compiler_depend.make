# Empty compiler generated dependencies file for split_impact.
# This may be replaced when dependencies are built.
