file(REMOVE_RECURSE
  "CMakeFiles/cpi_stack.dir/cpi_stack.cc.o"
  "CMakeFiles/cpi_stack.dir/cpi_stack.cc.o.d"
  "cpi_stack"
  "cpi_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpi_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
