# Empty dependencies file for cpi_stack.
# This may be replaced when dependencies are built.
