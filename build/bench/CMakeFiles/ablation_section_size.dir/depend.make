# Empty dependencies file for ablation_section_size.
# This may be replaced when dependencies are built.
