file(REMOVE_RECURSE
  "CMakeFiles/ablation_section_size.dir/ablation_section_size.cc.o"
  "CMakeFiles/ablation_section_size.dir/ablation_section_size.cc.o.d"
  "ablation_section_size"
  "ablation_section_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_section_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
