# Empty dependencies file for fig3_scatter.
# This may be replaced when dependencies are built.
