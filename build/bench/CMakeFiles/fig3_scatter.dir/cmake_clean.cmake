file(REMOVE_RECURSE
  "CMakeFiles/fig3_scatter.dir/fig3_scatter.cc.o"
  "CMakeFiles/fig3_scatter.dir/fig3_scatter.cc.o.d"
  "fig3_scatter"
  "fig3_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
