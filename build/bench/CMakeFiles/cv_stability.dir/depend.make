# Empty dependencies file for cv_stability.
# This may be replaced when dependencies are built.
