
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/cv_stability.cc" "bench/CMakeFiles/cv_stability.dir/cv_stability.cc.o" "gcc" "bench/CMakeFiles/cv_stability.dir/cv_stability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
