file(REMOVE_RECURSE
  "CMakeFiles/cv_stability.dir/cv_stability.cc.o"
  "CMakeFiles/cv_stability.dir/cv_stability.cc.o.d"
  "cv_stability"
  "cv_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
