# Empty compiler generated dependencies file for mtperf_tool.
# This may be replaced when dependencies are built.
