file(REMOVE_RECURSE
  "CMakeFiles/mtperf_tool.dir/mtperf_main.cc.o"
  "CMakeFiles/mtperf_tool.dir/mtperf_main.cc.o.d"
  "mtperf"
  "mtperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
