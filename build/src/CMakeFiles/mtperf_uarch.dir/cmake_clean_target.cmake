file(REMOVE_RECURSE
  "libmtperf_uarch.a"
)
