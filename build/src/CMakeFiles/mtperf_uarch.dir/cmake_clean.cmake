file(REMOVE_RECURSE
  "CMakeFiles/mtperf_uarch.dir/uarch/branch_predictor.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/branch_predictor.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/cache.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/cache.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/core.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/core.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/decoder.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/decoder.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/event_counters.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/event_counters.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/lsq.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/lsq.cc.o.d"
  "CMakeFiles/mtperf_uarch.dir/uarch/tlb.cc.o"
  "CMakeFiles/mtperf_uarch.dir/uarch/tlb.cc.o.d"
  "libmtperf_uarch.a"
  "libmtperf_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
