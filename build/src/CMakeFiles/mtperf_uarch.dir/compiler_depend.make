# Empty compiler generated dependencies file for mtperf_uarch.
# This may be replaced when dependencies are built.
