
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/branch_predictor.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/branch_predictor.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/branch_predictor.cc.o.d"
  "/root/repo/src/uarch/cache.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/cache.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/cache.cc.o.d"
  "/root/repo/src/uarch/core.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/core.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/core.cc.o.d"
  "/root/repo/src/uarch/decoder.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/decoder.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/decoder.cc.o.d"
  "/root/repo/src/uarch/event_counters.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/event_counters.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/event_counters.cc.o.d"
  "/root/repo/src/uarch/lsq.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/lsq.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/lsq.cc.o.d"
  "/root/repo/src/uarch/tlb.cc" "src/CMakeFiles/mtperf_uarch.dir/uarch/tlb.cc.o" "gcc" "src/CMakeFiles/mtperf_uarch.dir/uarch/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
