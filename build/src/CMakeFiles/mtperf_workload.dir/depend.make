# Empty dependencies file for mtperf_workload.
# This may be replaced when dependencies are built.
