
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/phase.cc" "src/CMakeFiles/mtperf_workload.dir/workload/phase.cc.o" "gcc" "src/CMakeFiles/mtperf_workload.dir/workload/phase.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/mtperf_workload.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/mtperf_workload.dir/workload/runner.cc.o.d"
  "/root/repo/src/workload/spec_suite.cc" "src/CMakeFiles/mtperf_workload.dir/workload/spec_suite.cc.o" "gcc" "src/CMakeFiles/mtperf_workload.dir/workload/spec_suite.cc.o.d"
  "/root/repo/src/workload/stream_gen.cc" "src/CMakeFiles/mtperf_workload.dir/workload/stream_gen.cc.o" "gcc" "src/CMakeFiles/mtperf_workload.dir/workload/stream_gen.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/CMakeFiles/mtperf_workload.dir/workload/trace.cc.o" "gcc" "src/CMakeFiles/mtperf_workload.dir/workload/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
