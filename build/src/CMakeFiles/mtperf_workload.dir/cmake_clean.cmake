file(REMOVE_RECURSE
  "CMakeFiles/mtperf_workload.dir/workload/phase.cc.o"
  "CMakeFiles/mtperf_workload.dir/workload/phase.cc.o.d"
  "CMakeFiles/mtperf_workload.dir/workload/runner.cc.o"
  "CMakeFiles/mtperf_workload.dir/workload/runner.cc.o.d"
  "CMakeFiles/mtperf_workload.dir/workload/spec_suite.cc.o"
  "CMakeFiles/mtperf_workload.dir/workload/spec_suite.cc.o.d"
  "CMakeFiles/mtperf_workload.dir/workload/stream_gen.cc.o"
  "CMakeFiles/mtperf_workload.dir/workload/stream_gen.cc.o.d"
  "CMakeFiles/mtperf_workload.dir/workload/trace.cc.o"
  "CMakeFiles/mtperf_workload.dir/workload/trace.cc.o.d"
  "libmtperf_workload.a"
  "libmtperf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
