file(REMOVE_RECURSE
  "libmtperf_workload.a"
)
