file(REMOVE_RECURSE
  "CMakeFiles/mtperf_common.dir/common/csv.cc.o"
  "CMakeFiles/mtperf_common.dir/common/csv.cc.o.d"
  "CMakeFiles/mtperf_common.dir/common/logging.cc.o"
  "CMakeFiles/mtperf_common.dir/common/logging.cc.o.d"
  "CMakeFiles/mtperf_common.dir/common/rng.cc.o"
  "CMakeFiles/mtperf_common.dir/common/rng.cc.o.d"
  "CMakeFiles/mtperf_common.dir/common/strings.cc.o"
  "CMakeFiles/mtperf_common.dir/common/strings.cc.o.d"
  "libmtperf_common.a"
  "libmtperf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
