file(REMOVE_RECURSE
  "libmtperf_common.a"
)
