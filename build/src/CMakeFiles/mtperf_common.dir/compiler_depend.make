# Empty compiler generated dependencies file for mtperf_common.
# This may be replaced when dependencies are built.
