file(REMOVE_RECURSE
  "libmtperf_perf.a"
)
