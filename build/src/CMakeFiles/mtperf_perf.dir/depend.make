# Empty dependencies file for mtperf_perf.
# This may be replaced when dependencies are built.
