file(REMOVE_RECURSE
  "CMakeFiles/mtperf_perf.dir/perf/analyzer.cc.o"
  "CMakeFiles/mtperf_perf.dir/perf/analyzer.cc.o.d"
  "CMakeFiles/mtperf_perf.dir/perf/diff.cc.o"
  "CMakeFiles/mtperf_perf.dir/perf/diff.cc.o.d"
  "CMakeFiles/mtperf_perf.dir/perf/first_order_model.cc.o"
  "CMakeFiles/mtperf_perf.dir/perf/first_order_model.cc.o.d"
  "CMakeFiles/mtperf_perf.dir/perf/json_report.cc.o"
  "CMakeFiles/mtperf_perf.dir/perf/json_report.cc.o.d"
  "CMakeFiles/mtperf_perf.dir/perf/section_collector.cc.o"
  "CMakeFiles/mtperf_perf.dir/perf/section_collector.cc.o.d"
  "libmtperf_perf.a"
  "libmtperf_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
