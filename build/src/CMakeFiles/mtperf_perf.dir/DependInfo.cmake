
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/analyzer.cc" "src/CMakeFiles/mtperf_perf.dir/perf/analyzer.cc.o" "gcc" "src/CMakeFiles/mtperf_perf.dir/perf/analyzer.cc.o.d"
  "/root/repo/src/perf/diff.cc" "src/CMakeFiles/mtperf_perf.dir/perf/diff.cc.o" "gcc" "src/CMakeFiles/mtperf_perf.dir/perf/diff.cc.o.d"
  "/root/repo/src/perf/first_order_model.cc" "src/CMakeFiles/mtperf_perf.dir/perf/first_order_model.cc.o" "gcc" "src/CMakeFiles/mtperf_perf.dir/perf/first_order_model.cc.o.d"
  "/root/repo/src/perf/json_report.cc" "src/CMakeFiles/mtperf_perf.dir/perf/json_report.cc.o" "gcc" "src/CMakeFiles/mtperf_perf.dir/perf/json_report.cc.o.d"
  "/root/repo/src/perf/section_collector.cc" "src/CMakeFiles/mtperf_perf.dir/perf/section_collector.cc.o" "gcc" "src/CMakeFiles/mtperf_perf.dir/perf/section_collector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
