file(REMOVE_RECURSE
  "CMakeFiles/mtperf_math.dir/math/least_squares.cc.o"
  "CMakeFiles/mtperf_math.dir/math/least_squares.cc.o.d"
  "CMakeFiles/mtperf_math.dir/math/matrix.cc.o"
  "CMakeFiles/mtperf_math.dir/math/matrix.cc.o.d"
  "CMakeFiles/mtperf_math.dir/math/stats.cc.o"
  "CMakeFiles/mtperf_math.dir/math/stats.cc.o.d"
  "libmtperf_math.a"
  "libmtperf_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
