file(REMOVE_RECURSE
  "libmtperf_math.a"
)
