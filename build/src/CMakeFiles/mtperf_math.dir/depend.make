# Empty dependencies file for mtperf_math.
# This may be replaced when dependencies are built.
