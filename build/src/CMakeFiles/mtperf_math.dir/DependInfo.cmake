
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/least_squares.cc" "src/CMakeFiles/mtperf_math.dir/math/least_squares.cc.o" "gcc" "src/CMakeFiles/mtperf_math.dir/math/least_squares.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/CMakeFiles/mtperf_math.dir/math/matrix.cc.o" "gcc" "src/CMakeFiles/mtperf_math.dir/math/matrix.cc.o.d"
  "/root/repo/src/math/stats.cc" "src/CMakeFiles/mtperf_math.dir/math/stats.cc.o" "gcc" "src/CMakeFiles/mtperf_math.dir/math/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
