
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/attribute.cc" "src/CMakeFiles/mtperf_data.dir/data/attribute.cc.o" "gcc" "src/CMakeFiles/mtperf_data.dir/data/attribute.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mtperf_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mtperf_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/folds.cc" "src/CMakeFiles/mtperf_data.dir/data/folds.cc.o" "gcc" "src/CMakeFiles/mtperf_data.dir/data/folds.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/mtperf_data.dir/data/io.cc.o" "gcc" "src/CMakeFiles/mtperf_data.dir/data/io.cc.o.d"
  "/root/repo/src/data/transform.cc" "src/CMakeFiles/mtperf_data.dir/data/transform.cc.o" "gcc" "src/CMakeFiles/mtperf_data.dir/data/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
