# Empty compiler generated dependencies file for mtperf_data.
# This may be replaced when dependencies are built.
