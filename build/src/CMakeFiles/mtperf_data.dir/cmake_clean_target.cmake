file(REMOVE_RECURSE
  "libmtperf_data.a"
)
