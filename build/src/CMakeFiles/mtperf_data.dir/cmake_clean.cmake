file(REMOVE_RECURSE
  "CMakeFiles/mtperf_data.dir/data/attribute.cc.o"
  "CMakeFiles/mtperf_data.dir/data/attribute.cc.o.d"
  "CMakeFiles/mtperf_data.dir/data/dataset.cc.o"
  "CMakeFiles/mtperf_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/mtperf_data.dir/data/folds.cc.o"
  "CMakeFiles/mtperf_data.dir/data/folds.cc.o.d"
  "CMakeFiles/mtperf_data.dir/data/io.cc.o"
  "CMakeFiles/mtperf_data.dir/data/io.cc.o.d"
  "CMakeFiles/mtperf_data.dir/data/transform.cc.o"
  "CMakeFiles/mtperf_data.dir/data/transform.cc.o.d"
  "libmtperf_data.a"
  "libmtperf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
