file(REMOVE_RECURSE
  "CMakeFiles/mtperf_cli.dir/cli/args.cc.o"
  "CMakeFiles/mtperf_cli.dir/cli/args.cc.o.d"
  "CMakeFiles/mtperf_cli.dir/cli/commands.cc.o"
  "CMakeFiles/mtperf_cli.dir/cli/commands.cc.o.d"
  "libmtperf_cli.a"
  "libmtperf_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
