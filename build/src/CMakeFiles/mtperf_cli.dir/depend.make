# Empty dependencies file for mtperf_cli.
# This may be replaced when dependencies are built.
