file(REMOVE_RECURSE
  "libmtperf_cli.a"
)
