file(REMOVE_RECURSE
  "CMakeFiles/mtperf_ml.dir/ml/eval/cross_validation.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/eval/cross_validation.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/eval/metrics.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/eval/metrics.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/knn/knn.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/knn/knn.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/linear/linear_model.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/linear/linear_model.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/mlp/mlp.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/mlp/mlp.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/svr/svr.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/svr/svr.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/tree/bagged_m5.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/tree/bagged_m5.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/tree/m5prime.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/tree/m5prime.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/tree/m5rules.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/tree/m5rules.cc.o.d"
  "CMakeFiles/mtperf_ml.dir/ml/tree/regression_tree.cc.o"
  "CMakeFiles/mtperf_ml.dir/ml/tree/regression_tree.cc.o.d"
  "libmtperf_ml.a"
  "libmtperf_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtperf_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
