file(REMOVE_RECURSE
  "libmtperf_ml.a"
)
