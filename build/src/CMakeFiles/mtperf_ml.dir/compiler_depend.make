# Empty compiler generated dependencies file for mtperf_ml.
# This may be replaced when dependencies are built.
