
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/eval/cross_validation.cc" "src/CMakeFiles/mtperf_ml.dir/ml/eval/cross_validation.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/eval/cross_validation.cc.o.d"
  "/root/repo/src/ml/eval/metrics.cc" "src/CMakeFiles/mtperf_ml.dir/ml/eval/metrics.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/eval/metrics.cc.o.d"
  "/root/repo/src/ml/knn/knn.cc" "src/CMakeFiles/mtperf_ml.dir/ml/knn/knn.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/knn/knn.cc.o.d"
  "/root/repo/src/ml/linear/linear_model.cc" "src/CMakeFiles/mtperf_ml.dir/ml/linear/linear_model.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/linear/linear_model.cc.o.d"
  "/root/repo/src/ml/mlp/mlp.cc" "src/CMakeFiles/mtperf_ml.dir/ml/mlp/mlp.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/mlp/mlp.cc.o.d"
  "/root/repo/src/ml/svr/svr.cc" "src/CMakeFiles/mtperf_ml.dir/ml/svr/svr.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/svr/svr.cc.o.d"
  "/root/repo/src/ml/tree/bagged_m5.cc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/bagged_m5.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/bagged_m5.cc.o.d"
  "/root/repo/src/ml/tree/m5prime.cc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/m5prime.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/m5prime.cc.o.d"
  "/root/repo/src/ml/tree/m5rules.cc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/m5rules.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/m5rules.cc.o.d"
  "/root/repo/src/ml/tree/regression_tree.cc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/regression_tree.cc.o" "gcc" "src/CMakeFiles/mtperf_ml.dir/ml/tree/regression_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mtperf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_math.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mtperf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
